//! Device-level texture-unit tests beyond the Figure 20 benchmarks:
//! multiple texture stages bound at once, non-RGBA8 formats, and wrap
//! modes — all sampled by the `tex` instruction on the simulated GPU and
//! checked against the functional sampler.

use vortex_asm::Assembler;
use vortex_core::GpuConfig;
use vortex_isa::{csr, Reg};
use vortex_mem::Ram;
use vortex_runtime::{abi, emit_spawn_tasks, ArgWriter, Device};
use vortex_tex::{sample_point, Rgba8, TexFormat, TexState, WrapMode};

/// Builds a kernel that configures `stage` from the argument block
/// (addr, logw, logh, format, wrap, filter at arg offsets 0..24), then
/// samples at the (u, v) pairs in a coordinate array and stores the RGBA8
/// results. Arguments continue with: coords ptr (28), out ptr (32), n (36).
fn sampler_program(stage: u8) -> vortex_asm::Program {
    let mut a = Assembler::new();
    emit_spawn_tasks(&mut a, "body").expect("stub");
    a.label("body").expect("label");
    // Configure the stage's CSRs from args.
    for (slot, reg) in [
        (csr::TexReg::Addr, 0),
        (csr::TexReg::LogWidth, 4),
        (csr::TexReg::LogHeight, 8),
        (csr::TexReg::Format, 12),
        (csr::TexReg::Wrap, 16),
        (csr::TexReg::Filter, 20),
    ] {
        a.lw(Reg::X5, Reg::X10, reg);
        a.csrw(csr::tex_csr(stage as usize, slot), Reg::X5);
    }
    a.li(Reg::X5, 0);
    a.csrw(csr::tex_csr(stage as usize, csr::TexReg::MipOff), Reg::X5);
    a.lw(Reg::X11, Reg::X10, 28); // coords (u,v f32 pairs)
    a.lw(Reg::X12, Reg::X10, 32); // out
    a.lw(Reg::X13, Reg::X10, 36); // n
    // Work loop (guarded).
    a.csrr(Reg::X8, csr::VX_GTID);
    a.csrr(Reg::X9, csr::VX_NC);
    a.csrr(Reg::X28, csr::VX_NW);
    a.mul(Reg::X9, Reg::X9, Reg::X28);
    a.csrr(Reg::X28, csr::VX_NT);
    a.mul(Reg::X9, Reg::X9, Reg::X28);
    a.label("loop").expect("label");
    a.slt(Reg::X28, Reg::X8, Reg::X13);
    a.split(Reg::X28);
    a.beqz(Reg::X28, "skip");
    a.slli(Reg::X20, Reg::X8, 3);
    a.add(Reg::X20, Reg::X20, Reg::X11);
    a.lw(Reg::X21, Reg::X20, 0); // u bits
    a.lw(Reg::X22, Reg::X20, 4); // v bits
    a.tex(stage, Reg::X23, Reg::X21, Reg::X22, Reg::X0);
    a.slli(Reg::X24, Reg::X8, 2);
    a.add(Reg::X24, Reg::X24, Reg::X12);
    a.sw(Reg::X23, Reg::X24, 0);
    a.label("skip").expect("label");
    a.join();
    a.add(Reg::X8, Reg::X8, Reg::X9);
    a.csrr(Reg::X28, csr::VX_TID);
    a.sub(Reg::X28, Reg::X8, Reg::X28);
    a.blt(Reg::X28, Reg::X13, "loop");
    a.ret();
    a.assemble(abi::CODE_BASE).expect("assembles")
}

struct TexFixture {
    bytes: Vec<u8>,
    log_size: u32,
    format: TexFormat,
    wrap: WrapMode,
}

impl TexFixture {
    fn state(&self, addr: u32) -> TexState {
        TexState {
            addr,
            mipoff: 0,
            log_width: self.log_size,
            log_height: self.log_size,
            format: self.format,
            wrap_u: self.wrap,
            wrap_v: self.wrap,
            filter: vortex_tex::FilterMode::Point,
        }
    }
}

fn rgb565_gradient(log_size: u32) -> TexFixture {
    let size = 1usize << log_size;
    let mut bytes = Vec::new();
    for y in 0..size {
        for x in 0..size {
            let r5 = (x * 31 / (size - 1)) as u16;
            let g6 = (y * 63 / (size - 1)) as u16;
            let texel: u16 = (r5 << 11) | (g6 << 5) | 0x1F;
            bytes.extend_from_slice(&texel.to_le_bytes());
        }
    }
    TexFixture {
        bytes,
        log_size,
        format: TexFormat::Rgb565,
        wrap: WrapMode::Repeat,
    }
}

fn run_sampler(stage: u8, fixture: &TexFixture, coords: &[(f32, f32)]) -> Vec<u32> {
    let mut dev = Device::new(GpuConfig::with_cores(1));
    let tex_buf = dev.alloc(fixture.bytes.len() as u32).expect("alloc");
    dev.upload(tex_buf, &fixture.bytes).expect("upload");
    let coord_bytes: Vec<u8> = coords
        .iter()
        .flat_map(|(u, v)| {
            u.to_bits()
                .to_le_bytes()
                .into_iter()
                .chain(v.to_bits().to_le_bytes())
        })
        .collect();
    let coord_buf = dev.alloc(coord_bytes.len() as u32).expect("alloc");
    dev.upload(coord_buf, &coord_bytes).expect("upload");
    let out_buf = dev.alloc((coords.len() * 4) as u32).expect("alloc");

    let wrap_csr = match fixture.wrap {
        WrapMode::Clamp => 0u32,
        WrapMode::Repeat => 0b0101,
        WrapMode::Mirror => 0b1010,
    };
    let mut args = ArgWriter::new();
    args.word(tex_buf.addr)
        .word(fixture.log_size)
        .word(fixture.log_size)
        .word(fixture.format as u32)
        .word(wrap_csr)
        .word(0) // point filtering
        .word(0) // pad to offset 28
        .word(coord_buf.addr)
        .word(out_buf.addr)
        .word(coords.len() as u32);
    dev.write_args(&args);
    let prog = sampler_program(stage);
    dev.load_program(&prog);
    dev.run_kernel(prog.entry).expect("kernel finishes");
    dev.download_words(out_buf)
        .expect("download in range")
}

fn oracle(fixture: &TexFixture, coords: &[(f32, f32)]) -> Vec<u32> {
    let mut ram = Ram::new();
    ram.write_bytes(0x9000, &fixture.bytes);
    let state = fixture.state(0x9000);
    coords
        .iter()
        .map(|&(u, v)| sample_point(&ram, &state, u, v, 0).to_u32())
        .collect()
}

fn grid_coords(n: usize) -> Vec<(f32, f32)> {
    (0..n)
        .map(|i| {
            // Cover in-range and out-of-range (wrap-exercising) coords.
            let u = (i as f32 / n as f32) * 2.0 - 0.5;
            let v = ((i * 7 % n) as f32 / n as f32) * 1.5;
            (u, v)
        })
        .collect()
}

#[test]
fn rgb565_with_repeat_wrap_samples_exactly() {
    let fixture = rgb565_gradient(4);
    let coords = grid_coords(32);
    assert_eq!(run_sampler(0, &fixture, &coords), oracle(&fixture, &coords));
}

#[test]
fn luminance_format_samples_exactly() {
    let size = 1usize << 3;
    let fixture = TexFixture {
        bytes: (0..size * size).map(|i| (i * 3) as u8).collect(),
        log_size: 3,
        format: TexFormat::L8,
        wrap: WrapMode::Mirror,
    };
    let coords = grid_coords(24);
    assert_eq!(run_sampler(0, &fixture, &coords), oracle(&fixture, &coords));
}

#[test]
fn non_zero_texture_stage_works() {
    let fixture = rgb565_gradient(3);
    let coords = grid_coords(16);
    for stage in 1..4u8 {
        assert_eq!(
            run_sampler(stage, &fixture, &coords),
            oracle(&fixture, &coords),
            "stage {stage}"
        );
    }
}

#[test]
fn two_stages_bound_simultaneously() {
    // Stage 0: solid red RGBA8; stage 1: solid blue. One kernel samples
    // both and combines: out = tex0 | tex1.
    let mut a = Assembler::new();
    emit_spawn_tasks(&mut a, "body").expect("stub");
    a.label("body").expect("label");
    for stage in 0..2usize {
        a.lw(Reg::X5, Reg::X10, (stage * 4) as i32);
        a.csrw(csr::tex_csr(stage, csr::TexReg::Addr), Reg::X5);
        a.li(Reg::X5, 2);
        a.csrw(csr::tex_csr(stage, csr::TexReg::LogWidth), Reg::X5);
        a.csrw(csr::tex_csr(stage, csr::TexReg::LogHeight), Reg::X5);
        a.csrw(csr::tex_csr(stage, csr::TexReg::Format), Reg::X0);
        a.csrw(csr::tex_csr(stage, csr::TexReg::Wrap), Reg::X0);
        a.csrw(csr::tex_csr(stage, csr::TexReg::Filter), Reg::X0);
        a.csrw(csr::tex_csr(stage, csr::TexReg::MipOff), Reg::X0);
    }
    a.lw(Reg::X12, Reg::X10, 8); // out
    // Sample the center with both stages.
    a.li(Reg::X21, 0.5f32.to_bits() as i32);
    a.tex(0, Reg::X23, Reg::X21, Reg::X21, Reg::X0);
    a.tex(1, Reg::X24, Reg::X21, Reg::X21, Reg::X0);
    a.or(Reg::X23, Reg::X23, Reg::X24);
    a.sw(Reg::X23, Reg::X12, 0);
    a.ecall();
    let prog = a.assemble(abi::CODE_BASE).expect("assembles");

    let mut dev = Device::new(GpuConfig::with_cores(1));
    let red: Vec<u8> = std::iter::repeat_n(Rgba8::new(255, 0, 0, 255).to_u32().to_le_bytes(), 16)
        .flatten()
        .collect();
    let blue: Vec<u8> = std::iter::repeat_n(Rgba8::new(0, 0, 255, 255).to_u32().to_le_bytes(), 16)
        .flatten()
        .collect();
    let t0 = dev.alloc(64).expect("alloc");
    let t1 = dev.alloc(64).expect("alloc");
    dev.upload(t0, &red).expect("upload");
    dev.upload(t1, &blue).expect("upload");
    let out = dev.alloc(4).expect("alloc");
    let mut args = ArgWriter::new();
    args.word(t0.addr).word(t1.addr).word(out.addr);
    dev.write_args(&args);
    dev.load_program(&prog);
    dev.run_kernel(prog.entry).expect("finishes");
    assert_eq!(
        dev.download_words(out).expect("download in range")[0],
        Rgba8::new(255, 0, 255, 255).to_u32(),
        "red | blue = magenta"
    );
}
