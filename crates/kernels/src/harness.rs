//! The benchmark abstraction the experiment harness drives.

use vortex_core::profile::GpuProfile;
use vortex_core::telemetry::TimeSeries;
use vortex_core::{GpuConfig, GpuStats};

/// The paper's benchmark classification (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchClass {
    /// `sgemm`, `vecadd`, `sfilter` — IPC scales with cores (Figure 18).
    ComputeBound,
    /// `saxpy`, `nearn`, `gaussian`, `bfs` — limited by memory bandwidth.
    MemoryBound,
    /// The synthetic texture-filtering benchmarks (§6.4).
    Texture,
    /// The 3D-graphics rasterization benchmark (§5.5/§6.4): full
    /// render-pipeline frames rather than a single kernel loop.
    Graphics,
}

/// One benchmark execution's outcome.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Device counters.
    pub stats: GpuStats,
    /// `true` when the device output matched the host reference.
    pub validated: bool,
    /// Work items processed.
    pub work: usize,
    /// The sampled telemetry time series, when the config enabled one
    /// (`GpuConfig::sample_interval > 0`); `None` otherwise.
    pub series: Option<TimeSeries>,
    /// The merged PC-level profile, when the config enabled the profiler
    /// (`GpuConfig::profile`); `None` otherwise. Observation-only: `stats`
    /// is bit-identical whether or not this is collected (`vxbench`
    /// asserts it per workload).
    pub profile: Option<GpuProfile>,
}

impl BenchResult {
    /// Aggregate issue-slot IPC.
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }

    /// Aggregate thread-level IPC (the paper's figure metric).
    pub fn thread_ipc(&self) -> f64 {
        self.stats.thread_ipc()
    }
}

/// A runnable benchmark: generates inputs, runs the kernel on a device of
/// the given configuration, and validates against the host reference.
///
/// `Send + Sync` so the experiment harness can fan a sweep out across
/// worker threads (each `run_on` builds its own device; benchmarks hold
/// only their immutable problem description).
pub trait Benchmark: Send + Sync {
    /// Short name (`sgemm`, `bfs`, ...).
    fn name(&self) -> &'static str;

    /// The paper's classification.
    fn class(&self) -> BenchClass;

    /// Runs on a freshly opened device of shape `config`.
    ///
    /// # Panics
    /// Panics if the kernel fails to assemble or times out — benchmark
    /// inputs are fixed, so either indicates a bug, not a user error.
    fn run_on(&self, config: &GpuConfig) -> BenchResult;
}
