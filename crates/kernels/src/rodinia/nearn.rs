//! `nearn` (Rodinia *nn*, nearest neighbor): per-record Euclidean distance
//! to a query point.
//!
//! Classified memory-bound by the paper but noted in §6.2.3 as "also
//! compute-bound with an expensive long-latency floating-point square-root
//! operation inside its kernel" — the reason its IPC refuses to scale in
//! Figure 18. The `fsqrt` here lands on the simulator's blocking
//! square-root unit, reproducing exactly that behaviour.

use crate::harness::{BenchClass, BenchResult, Benchmark};
use crate::util::{self, R_IDX};
use vortex_asm::Assembler;
use vortex_core::GpuConfig;
use vortex_isa::{FReg, Reg};
use vortex_runtime::{abi, emit_spawn_tasks, ArgWriter, Device};

/// The `nearn` benchmark over `n` records.
#[derive(Debug, Clone, Copy)]
pub struct Nearn {
    /// Number of (lat, lng) records.
    pub n: usize,
    /// Query latitude.
    pub lat: f32,
    /// Query longitude.
    pub lng: f32,
}

impl Nearn {
    /// `n` records against a fixed query point.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            lat: 0.5,
            lng: 0.5,
        }
    }
}

impl Default for Nearn {
    fn default() -> Self {
        // Fixed, deliberately modest dataset: at high core counts the
        // per-thread work shrinks until the long-latency square root and
        // launch overhead dominate — the paper's observed nearn plateau.
        Self::new(2048)
    }
}

/// Builds the nearn program. Argument block:
/// `locations (lat,lng pairs), dist, n, lat, lng`.
pub fn program() -> vortex_asm::Program {
    let mut asm = Assembler::new();
    emit_spawn_tasks(&mut asm, "body").expect("stub emits once");
    asm.label("body").expect("fresh label");
    util::emit_load_args(&mut asm, 5); // x11=loc x12=dist x13=n x14=lat x15=lng
    asm.fmv_w_x(FReg::X4, Reg::X14); // f4 = query lat
    asm.fmv_w_x(FReg::X5, Reg::X15); // f5 = query lng
    util::emit_gtid_stride(&mut asm);
    util::emit_loop_head(&mut asm, Reg::X13, "nn").expect("fresh tag");
    asm.slli(Reg::X16, R_IDX, 3); // 8 bytes per record
    asm.add(Reg::X16, Reg::X16, Reg::X11);
    asm.flw(FReg::X0, Reg::X16, 0); // lat_i
    asm.flw(FReg::X1, Reg::X16, 4); // lng_i
    asm.fsub(FReg::X0, FReg::X0, FReg::X4);
    asm.fsub(FReg::X1, FReg::X1, FReg::X5);
    asm.fmul(FReg::X2, FReg::X0, FReg::X0);
    asm.fmadd(FReg::X2, FReg::X1, FReg::X1, FReg::X2);
    asm.fsqrt(FReg::X3, FReg::X2); // the long-latency op
    asm.slli(Reg::X17, R_IDX, 2);
    asm.add(Reg::X17, Reg::X17, Reg::X12);
    asm.fsw(FReg::X3, Reg::X17, 0);
    util::emit_loop_tail(&mut asm, Reg::X13, "nn").expect("fresh tag");
    asm.ret();
    asm.assemble(abi::CODE_BASE).expect("nearn assembles")
}

impl Benchmark for Nearn {
    fn name(&self) -> &'static str {
        "nearn"
    }

    fn class(&self) -> BenchClass {
        BenchClass::MemoryBound
    }

    fn run_on(&self, config: &GpuConfig) -> BenchResult {
        let n = self.n;
        let mut dev = Device::new(config.clone());
        let locations = util::random_floats(n * 2);
        let buf_loc = dev.alloc((n * 8) as u32).expect("alloc loc");
        let buf_dist = dev.alloc((n * 4) as u32).expect("alloc dist");
        dev.upload(buf_loc, &util::floats_to_bytes(&locations))
            .expect("upload");

        let mut args = ArgWriter::new();
        args.word(buf_loc.addr)
            .word(buf_dist.addr)
            .word(n as u32)
            .float(self.lat)
            .float(self.lng);
        dev.write_args(&args);

        let prog = program();
        dev.load_program(&prog);
        let report = dev.run_kernel(prog.entry).expect("nearn finishes");

        let got = dev.download_floats(buf_dist).expect("download in range");
        let expect: Vec<f32> = (0..n)
            .map(|i| {
                let dlat = locations[i * 2] - self.lat;
                let dlng = locations[i * 2 + 1] - self.lng;
                dlng.mul_add(dlng, dlat * dlat).sqrt()
            })
            .collect();
        BenchResult {
            series: dev.time_series().cloned(),
            profile: dev.profile(),
            name: self.name().into(),
            stats: report.stats,
            validated: util::approx_eq_slices(&got, &expect, 1e-6),
            work: n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearn_validates() {
        let r = Nearn::new(48).run_on(&GpuConfig::with_cores(1));
        assert!(r.validated);
    }
}
