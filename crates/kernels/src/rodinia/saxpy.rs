//! `saxpy`: `y[i] = alpha * x[i] + y[i]` (memory-bound group).

use crate::harness::{BenchClass, BenchResult, Benchmark};
use crate::util::{self, R_IDX};
use vortex_asm::Assembler;
use vortex_core::GpuConfig;
use vortex_isa::{FReg, Reg};
use vortex_runtime::{abi, emit_spawn_tasks, ArgWriter, Device};

/// The `saxpy` benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Saxpy {
    /// Vector length.
    pub n: usize,
    /// The scalar multiplier.
    pub alpha: f32,
}

impl Saxpy {
    /// A `saxpy` over vectors of length `n`.
    pub fn new(n: usize) -> Self {
        Self { n, alpha: 2.5 }
    }
}

impl Default for Saxpy {
    fn default() -> Self {
        Self::new(8192)
    }
}

/// Builds the saxpy program. Argument block: `x, y, n, alpha`.
pub fn program() -> vortex_asm::Program {
    let mut asm = Assembler::new();
    emit_spawn_tasks(&mut asm, "body").expect("stub emits once");
    asm.label("body").expect("fresh label");
    util::emit_load_args(&mut asm, 4); // x11=x x12=y x13=n x14=alpha bits
    asm.fmv_w_x(FReg::X3, Reg::X14); // f3 = alpha
    util::emit_gtid_stride(&mut asm);
    util::emit_loop_head(&mut asm, Reg::X13, "sx").expect("fresh tag");
    asm.slli(Reg::X15, R_IDX, 2);
    asm.add(Reg::X16, Reg::X11, Reg::X15);
    asm.flw(FReg::X0, Reg::X16, 0); // x[i]
    asm.add(Reg::X17, Reg::X12, Reg::X15);
    asm.flw(FReg::X1, Reg::X17, 0); // y[i]
    asm.fmadd(FReg::X2, FReg::X3, FReg::X0, FReg::X1); // alpha*x + y
    asm.fsw(FReg::X2, Reg::X17, 0);
    util::emit_loop_tail(&mut asm, Reg::X13, "sx").expect("fresh tag");
    asm.ret();
    asm.assemble(abi::CODE_BASE).expect("saxpy assembles")
}

impl Benchmark for Saxpy {
    fn name(&self) -> &'static str {
        "saxpy"
    }

    fn class(&self) -> BenchClass {
        BenchClass::MemoryBound
    }

    fn run_on(&self, config: &GpuConfig) -> BenchResult {
        let mut dev = Device::new(config.clone());
        let x = util::random_floats(self.n);
        let y = util::random_floats(self.n);
        let bytes = (self.n * 4) as u32;
        let buf_x = dev.alloc(bytes).expect("alloc x");
        let buf_y = dev.alloc(bytes).expect("alloc y");
        dev.upload(buf_x, &util::floats_to_bytes(&x)).expect("upload x");
        dev.upload(buf_y, &util::floats_to_bytes(&y)).expect("upload y");

        let mut args = ArgWriter::new();
        args.word(buf_x.addr)
            .word(buf_y.addr)
            .word(self.n as u32)
            .float(self.alpha);
        dev.write_args(&args);

        let prog = program();
        dev.load_program(&prog);
        let report = dev.run_kernel(prog.entry).expect("saxpy finishes");

        let got = dev.download_floats(buf_y).expect("download in range");
        let expect: Vec<f32> = x
            .iter()
            .zip(&y)
            .map(|(xi, yi)| self.alpha.mul_add(*xi, *yi))
            .collect();
        BenchResult {
            series: dev.time_series().cloned(),
            profile: dev.profile(),
            name: self.name().into(),
            stats: report.stats,
            validated: util::approx_eq_slices(&got, &expect, 1e-6),
            work: self.n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saxpy_validates() {
        let r = Saxpy::new(96).run_on(&GpuConfig::with_cores(1));
        assert!(r.validated);
    }
}
