//! `gaussian`: Gaussian elimination (memory-bound group).
//!
//! Follows Rodinia's two-kernel structure: for every pivot column `k`,
//! *Fan1* computes the column of multipliers `m[r] = A[r][k] / A[k][k]`
//! and *Fan2* applies the row updates `A[r][j] -= m[r] · A[k][j]` (and the
//! right-hand side). The host drives `n-1` rounds of the two launches —
//! exercising repeated kernel dispatch through the command processor —
//! and finally back-substitutes to validate the solution.

use crate::harness::{BenchClass, BenchResult, Benchmark};
use crate::util::{self, R_IDX};
use vortex_asm::Assembler;
use vortex_core::GpuConfig;
use vortex_isa::{FReg, Reg};
use vortex_runtime::{abi, emit_spawn_tasks, ArgWriter, Device};

/// The `gaussian` benchmark on an `n × n` system.
#[derive(Debug, Clone, Copy)]
pub struct Gaussian {
    /// System dimension.
    pub n: usize,
}

impl Gaussian {
    /// Solves an `n × n` diagonally dominant system.
    ///
    /// # Panics
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "gaussian needs at least a 2x2 system");
        Self { n }
    }
}

impl Default for Gaussian {
    fn default() -> Self {
        Self::new(24)
    }
}

/// Builds the combined Fan1/Fan2 program. Argument block:
/// `a, b, m, n, k, phase` — `phase` 0 runs Fan1, 1 runs Fan2.
/// Fan1 work-items: `i in 0..n-k-1`, row `r = k+1+i`.
pub fn program() -> vortex_asm::Program {
    let mut asm = Assembler::new();
    emit_spawn_tasks(&mut asm, "body").expect("stub emits once");
    asm.label("body").expect("fresh label");
    util::emit_load_args(&mut asm, 6); // x11=a x12=b x13=m x14=n x15=k x16=phase
    // items = n - k - 1.
    asm.sub(Reg::X17, Reg::X14, Reg::X15);
    asm.addi(Reg::X17, Reg::X17, -1);
    util::emit_gtid_stride(&mut asm);
    asm.bnez(Reg::X16, "fan2"); // uniform branch on phase

    // ---- Fan1: m[r] = A[r][k] / A[k][k] -------------------------------
    util::emit_loop_head(&mut asm, Reg::X17, "f1").expect("fresh tag");
    // r = k + 1 + i.
    asm.add(Reg::X18, Reg::X15, R_IDX);
    asm.addi(Reg::X18, Reg::X18, 1);
    // &A[r][k].
    asm.mul(Reg::X19, Reg::X18, Reg::X14);
    asm.add(Reg::X19, Reg::X19, Reg::X15);
    asm.slli(Reg::X19, Reg::X19, 2);
    asm.add(Reg::X19, Reg::X19, Reg::X11);
    asm.flw(FReg::X0, Reg::X19, 0);
    // &A[k][k].
    asm.mul(Reg::X20, Reg::X15, Reg::X14);
    asm.add(Reg::X20, Reg::X20, Reg::X15);
    asm.slli(Reg::X20, Reg::X20, 2);
    asm.add(Reg::X20, Reg::X20, Reg::X11);
    asm.flw(FReg::X1, Reg::X20, 0);
    asm.fdiv(FReg::X2, FReg::X0, FReg::X1);
    // m[r].
    asm.slli(Reg::X21, Reg::X18, 2);
    asm.add(Reg::X21, Reg::X21, Reg::X13);
    asm.fsw(FReg::X2, Reg::X21, 0);
    util::emit_loop_tail(&mut asm, Reg::X17, "f1").expect("fresh tag");
    asm.ret();

    // ---- Fan2: A[r][j] -= m[r]·A[k][j], b[r] -= m[r]·b[k] -------------
    asm.label("fan2").expect("fresh label");
    util::emit_loop_head(&mut asm, Reg::X17, "f2").expect("fresh tag");
    asm.add(Reg::X18, Reg::X15, R_IDX);
    asm.addi(Reg::X18, Reg::X18, 1); // r
    // f3 = m[r].
    asm.slli(Reg::X19, Reg::X18, 2);
    asm.add(Reg::X19, Reg::X19, Reg::X13);
    asm.flw(FReg::X3, Reg::X19, 0);
    // Row pointers at column k: &A[r][k], &A[k][k].
    asm.mul(Reg::X20, Reg::X18, Reg::X14);
    asm.add(Reg::X20, Reg::X20, Reg::X15);
    asm.slli(Reg::X20, Reg::X20, 2);
    asm.add(Reg::X20, Reg::X20, Reg::X11);
    asm.mul(Reg::X21, Reg::X15, Reg::X14);
    asm.add(Reg::X21, Reg::X21, Reg::X15);
    asm.slli(Reg::X21, Reg::X21, 2);
    asm.add(Reg::X21, Reg::X21, Reg::X11);
    // j loop: n - k iterations (uniform bound).
    asm.sub(Reg::X22, Reg::X14, Reg::X15);
    asm.label("jloop").expect("fresh label");
    asm.blez(Reg::X22, "jdone");
    asm.flw(FReg::X0, Reg::X20, 0); // A[r][j]
    asm.flw(FReg::X1, Reg::X21, 0); // A[k][j]
    asm.fmsub(FReg::X4, FReg::X3, FReg::X1, FReg::X0); // m·A[k][j] - A[r][j]
    asm.fneg(FReg::X4, FReg::X4); // A[r][j] - m·A[k][j]
    asm.fsw(FReg::X4, Reg::X20, 0);
    asm.addi(Reg::X20, Reg::X20, 4);
    asm.addi(Reg::X21, Reg::X21, 4);
    asm.addi(Reg::X22, Reg::X22, -1);
    asm.j("jloop");
    asm.label("jdone").expect("fresh label");
    // b[r] -= m[r]·b[k].
    asm.slli(Reg::X23, Reg::X18, 2);
    asm.add(Reg::X23, Reg::X23, Reg::X12);
    asm.flw(FReg::X0, Reg::X23, 0);
    asm.slli(Reg::X24, Reg::X15, 2);
    asm.add(Reg::X24, Reg::X24, Reg::X12);
    asm.flw(FReg::X1, Reg::X24, 0);
    asm.fmsub(FReg::X4, FReg::X3, FReg::X1, FReg::X0);
    asm.fneg(FReg::X4, FReg::X4);
    asm.fsw(FReg::X4, Reg::X23, 0);
    util::emit_loop_tail(&mut asm, Reg::X17, "f2").expect("fresh tag");
    asm.ret();
    asm.assemble(abi::CODE_BASE).expect("gaussian assembles")
}

/// Generates a diagonally dominant system with a known solution.
fn generate(n: usize) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let mut a = util::random_floats(n * n);
    for i in 0..n {
        a[i * n + i] += n as f32; // diagonal dominance: stable elimination
    }
    let x_true: Vec<f32> = (0..n).map(|i| 1.0 + (i as f32) * 0.25).collect();
    let b: Vec<f32> = (0..n)
        .map(|r| (0..n).map(|c| a[r * n + c] * x_true[c]).sum())
        .collect();
    (a, b, x_true)
}

impl Benchmark for Gaussian {
    fn name(&self) -> &'static str {
        "gaussian"
    }

    fn class(&self) -> BenchClass {
        BenchClass::MemoryBound
    }

    fn run_on(&self, config: &GpuConfig) -> BenchResult {
        let n = self.n;
        let mut dev = Device::new(config.clone());
        let (a, b, x_true) = generate(n);
        let buf_a = dev.alloc((n * n * 4) as u32).expect("alloc a");
        let buf_b = dev.alloc((n * 4) as u32).expect("alloc b");
        let buf_m = dev.alloc((n * 4) as u32).expect("alloc m");
        dev.upload(buf_a, &util::floats_to_bytes(&a)).expect("upload");
        dev.upload(buf_b, &util::floats_to_bytes(&b)).expect("upload");

        let prog = program();
        dev.load_program(&prog);

        // Device counters accumulate across launches (the GPU's cycle and
        // instruction counters are never reset), so the last report already
        // covers the whole elimination.
        let mut last_stats = None;
        for k in 0..n - 1 {
            for phase in 0..2u32 {
                let mut args = ArgWriter::new();
                args.word(buf_a.addr)
                    .word(buf_b.addr)
                    .word(buf_m.addr)
                    .word(n as u32)
                    .word(k as u32)
                    .word(phase);
                dev.write_args(&args);
                let report = dev.run_kernel(prog.entry).expect("gaussian finishes");
                last_stats = Some(report.stats);
            }
        }

        // Host back-substitution on the triangularized system.
        let a_out = dev.download_floats(buf_a).expect("download in range");
        let b_out = dev.download_floats(buf_b).expect("download in range");
        let mut x = vec![0.0f32; n];
        for r in (0..n).rev() {
            let mut acc = b_out[r];
            for c in r + 1..n {
                acc -= a_out[r * n + c] * x[c];
            }
            x[r] = acc / a_out[r * n + r];
        }
        let validated = util::approx_eq_slices(&x, &x_true, 2e-3);

        let stats = last_stats.expect("at least one launch");
        BenchResult {
            series: dev.time_series().cloned(),
            profile: dev.profile(),
            name: self.name().into(),
            stats,
            validated,
            work: n * n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_validates() {
        let r = Gaussian::new(6).run_on(&GpuConfig::with_cores(1));
        assert!(r.validated);
    }
}
