//! `bfs`: level-synchronous breadth-first search (memory-bound group).
//!
//! Edge-centric formulation: each work-item owns one directed edge
//! `(u, v)` and, when `level[u]` equals the current frontier level and
//! `v` is undiscovered, claims `v` for the next level. The per-edge
//! condition is data-dependent, so this is the benchmark that exercises
//! the `split`/`join` divergence hardware on every iteration. The host
//! relaunches the kernel once per BFS level until no update occurs.

use crate::harness::{BenchClass, BenchResult, Benchmark};
use crate::util::{self, R_IDX};
use rand::Rng;
use vortex_asm::Assembler;
use vortex_core::GpuConfig;
use vortex_isa::Reg;
use vortex_runtime::{abi, emit_spawn_tasks, ArgWriter, Device};

/// The `bfs` benchmark.
#[derive(Debug, Clone)]
pub struct Bfs {
    /// Number of nodes.
    pub nodes: usize,
    /// Extra random edges per node beyond the connecting tree.
    pub extra_degree: usize,
}

impl Bfs {
    /// A BFS over `nodes` vertices with roughly `extra_degree + 1`
    /// undirected edges per vertex.
    pub fn new(nodes: usize, extra_degree: usize) -> Self {
        Self {
            nodes,
            extra_degree,
        }
    }
}

impl Default for Bfs {
    fn default() -> Self {
        Self::new(1024, 3)
    }
}

/// Builds the per-level BFS program. Argument block:
/// `srcs, dsts, levels, num_edges, level, updated_ptr`.
pub fn program() -> vortex_asm::Program {
    let mut asm = Assembler::new();
    emit_spawn_tasks(&mut asm, "body").expect("stub emits once");
    asm.label("body").expect("fresh label");
    util::emit_load_args(&mut asm, 6); // x11=srcs x12=dsts x13=levels x14=m x15=L x16=updated
    util::emit_gtid_stride(&mut asm);
    util::emit_loop_head(&mut asm, Reg::X14, "bf").expect("fresh tag");
    asm.slli(Reg::X17, R_IDX, 2);
    // u = srcs[e]; lu = levels[u].
    asm.add(Reg::X18, Reg::X17, Reg::X11);
    asm.lw(Reg::X18, Reg::X18, 0);
    asm.slli(Reg::X18, Reg::X18, 2);
    asm.add(Reg::X18, Reg::X18, Reg::X13);
    asm.lw(Reg::X19, Reg::X18, 0); // lu
    // v = dsts[e]; lv = levels[v].
    asm.add(Reg::X20, Reg::X17, Reg::X12);
    asm.lw(Reg::X20, Reg::X20, 0);
    asm.slli(Reg::X20, Reg::X20, 2);
    asm.add(Reg::X20, Reg::X20, Reg::X13); // &levels[v]
    asm.lw(Reg::X21, Reg::X20, 0); // lv
    // p = (lu == L) && (lv == -1).
    asm.xor(Reg::X22, Reg::X19, Reg::X15);
    asm.seqz(Reg::X22, Reg::X22);
    asm.addi(Reg::X23, Reg::X21, 1);
    asm.seqz(Reg::X23, Reg::X23);
    asm.and(Reg::X22, Reg::X22, Reg::X23);
    // Guarded update under divergence control.
    asm.split(Reg::X22);
    asm.beqz(Reg::X22, "skip");
    asm.addi(Reg::X24, Reg::X15, 1);
    asm.sw(Reg::X24, Reg::X20, 0); // levels[v] = L + 1
    asm.li(Reg::X25, 1);
    asm.sw(Reg::X25, Reg::X16, 0); // *updated = 1
    asm.label("skip").expect("fresh label");
    asm.join();
    util::emit_loop_tail(&mut asm, Reg::X14, "bf").expect("fresh tag");
    asm.ret();
    asm.assemble(abi::CODE_BASE).expect("bfs assembles")
}

/// Generates a connected undirected graph as a directed edge list
/// (both directions present): a random spanning tree plus extra edges.
pub fn generate_graph(nodes: usize, extra_degree: usize) -> (Vec<u32>, Vec<u32>) {
    let mut rng = util::rng();
    let mut srcs = Vec::new();
    let mut dsts = Vec::new();
    let mut push = |a: u32, b: u32| {
        srcs.push(a);
        dsts.push(b);
        srcs.push(b);
        dsts.push(a);
    };
    for v in 1..nodes {
        let parent = rng.random_range(0..v);
        push(parent as u32, v as u32);
    }
    for v in 0..nodes {
        for _ in 0..extra_degree {
            let w = rng.random_range(0..nodes);
            if w != v {
                push(v as u32, w as u32);
            }
        }
    }
    (srcs, dsts)
}

/// Host reference BFS over the same edge list.
pub fn reference_bfs(srcs: &[u32], dsts: &[u32], nodes: usize) -> Vec<i32> {
    let mut levels = vec![-1i32; nodes];
    levels[0] = 0;
    let mut level = 0;
    loop {
        let mut updated = false;
        for (&u, &v) in srcs.iter().zip(dsts) {
            if levels[u as usize] == level && levels[v as usize] == -1 {
                levels[v as usize] = level + 1;
                updated = true;
            }
        }
        if !updated {
            return levels;
        }
        level += 1;
    }
}

impl Benchmark for Bfs {
    fn name(&self) -> &'static str {
        "bfs"
    }

    fn class(&self) -> BenchClass {
        BenchClass::MemoryBound
    }

    fn run_on(&self, config: &GpuConfig) -> BenchResult {
        let nodes = self.nodes;
        let (srcs, dsts) = generate_graph(nodes, self.extra_degree);
        let m = srcs.len();
        let mut dev = Device::new(config.clone());
        let buf_srcs = dev.alloc((m * 4) as u32).expect("alloc srcs");
        let buf_dsts = dev.alloc((m * 4) as u32).expect("alloc dsts");
        let buf_levels = dev.alloc((nodes * 4) as u32).expect("alloc levels");
        let buf_updated = dev.alloc(4).expect("alloc updated");
        dev.upload(buf_srcs, &util::words_to_bytes(&srcs)).expect("upload");
        dev.upload(buf_dsts, &util::words_to_bytes(&dsts)).expect("upload");
        let mut init = vec![-1i32 as u32; nodes];
        init[0] = 0;
        dev.upload(buf_levels, &util::words_to_bytes(&init)).expect("upload");

        let prog = program();
        dev.load_program(&prog);

        let mut level = 0u32;
        let mut last_stats = None;
        let _ = &last_stats;
        loop {
            dev.upload(buf_updated, &[0, 0, 0, 0]).expect("clear flag");
            let mut args = ArgWriter::new();
            args.word(buf_srcs.addr)
                .word(buf_dsts.addr)
                .word(buf_levels.addr)
                .word(m as u32)
                .word(level)
                .word(buf_updated.addr);
            dev.write_args(&args);
            let report = dev.run_kernel(prog.entry).expect("bfs finishes");
            last_stats = Some(report.stats);
            let updated = dev.download_words(buf_updated).expect("download in range")[0];
            if updated == 0 {
                break;
            }
            level += 1;
            assert!(
                (level as usize) <= nodes,
                "BFS level exceeded node count: graph bug"
            );
        }

        let got: Vec<i32> = dev
            .download_words(buf_levels)
            .expect("download in range")
            .into_iter()
            .map(|w| w as i32)
            .collect();
        let expect = reference_bfs(&srcs, &dsts, nodes);
        BenchResult {
            series: dev.time_series().cloned(),
            profile: dev.profile(),
            name: self.name().into(),
            stats: last_stats.expect("at least one launch"),
            validated: got == expect,
            work: m,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_graph_is_connected() {
        let (srcs, dsts) = generate_graph(64, 2);
        let levels = reference_bfs(&srcs, &dsts, 64);
        assert!(levels.iter().all(|&l| l >= 0), "spanning tree connects all");
    }

    #[test]
    fn bfs_validates_with_divergence() {
        let r = Bfs::new(32, 2).run_on(&GpuConfig::with_cores(1));
        assert!(r.validated);
        // The guarded update must actually diverge on a random graph.
        assert!(r.stats.cores[0].divergences > 0);
    }
}
