//! `vecadd`: element-wise vector addition, `c[i] = a[i] + b[i]`.

use crate::harness::{BenchClass, BenchResult, Benchmark};
use crate::util::{self, R_IDX, R_STRIDE};
use vortex_asm::Assembler;
use vortex_core::GpuConfig;
use vortex_isa::{FReg, Reg};
use vortex_runtime::{abi, emit_spawn_tasks, ArgWriter, Device};

/// The `vecadd` benchmark (compute-bound group).
#[derive(Debug, Clone, Copy)]
pub struct Vecadd {
    /// Vector length.
    pub n: usize,
}

impl Vecadd {
    /// A `vecadd` over vectors of length `n`.
    pub fn new(n: usize) -> Self {
        Self { n }
    }
}

impl Default for Vecadd {
    fn default() -> Self {
        Self::new(4096)
    }
}

/// Builds the vecadd program. Argument block: `a, b, c, n`.
pub fn program() -> vortex_asm::Program {
    let mut asm = Assembler::new();
    emit_spawn_tasks(&mut asm, "body").expect("stub emits once");
    asm.label("body").expect("fresh label");
    util::emit_load_args(&mut asm, 4); // x11=a x12=b x13=c x14=n
    util::emit_gtid_stride(&mut asm);
    util::emit_loop_head(&mut asm, Reg::X14, "va").expect("fresh tag");
    asm.slli(Reg::X15, R_IDX, 2);
    asm.add(Reg::X16, Reg::X11, Reg::X15);
    asm.flw(FReg::X0, Reg::X16, 0);
    asm.add(Reg::X16, Reg::X12, Reg::X15);
    asm.flw(FReg::X1, Reg::X16, 0);
    asm.fadd(FReg::X2, FReg::X0, FReg::X1);
    asm.add(Reg::X16, Reg::X13, Reg::X15);
    asm.fsw(FReg::X2, Reg::X16, 0);
    let _ = R_STRIDE; // documented in util
    util::emit_loop_tail(&mut asm, Reg::X14, "va").expect("fresh tag");
    asm.ret();
    asm.assemble(abi::CODE_BASE).expect("vecadd assembles")
}

impl Benchmark for Vecadd {
    fn name(&self) -> &'static str {
        "vecadd"
    }

    fn class(&self) -> BenchClass {
        BenchClass::ComputeBound
    }

    fn run_on(&self, config: &GpuConfig) -> BenchResult {
        let mut dev = Device::new(config.clone());
        let a = util::random_floats(self.n);
        let b = util::random_floats(self.n);
        let bytes = (self.n * 4) as u32;
        let buf_a = dev.alloc(bytes).expect("alloc a");
        let buf_b = dev.alloc(bytes).expect("alloc b");
        let buf_c = dev.alloc(bytes).expect("alloc c");
        dev.upload(buf_a, &util::floats_to_bytes(&a)).expect("upload a");
        dev.upload(buf_b, &util::floats_to_bytes(&b)).expect("upload b");

        let mut args = ArgWriter::new();
        args.word(buf_a.addr)
            .word(buf_b.addr)
            .word(buf_c.addr)
            .word(self.n as u32);
        dev.write_args(&args);

        let prog = program();
        dev.load_program(&prog);
        let report = dev.run_kernel(prog.entry).expect("vecadd finishes");

        let c = dev.download_floats(buf_c).expect("download in range");
        let expect: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        BenchResult {
            series: dev.time_series().cloned(),
            profile: dev.profile(),
            name: self.name().into(),
            stats: report.stats,
            validated: util::approx_eq_slices(&c, &expect, 1e-6),
            work: self.n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vecadd_validates_on_baseline_core() {
        let r = Vecadd::new(64).run_on(&GpuConfig::with_cores(1));
        assert!(r.validated);
        assert!(r.stats.cycles > 0);
    }

    #[test]
    fn vecadd_validates_on_two_cores() {
        let r = Vecadd::new(128).run_on(&GpuConfig::with_cores(2));
        assert!(r.validated);
    }
}
