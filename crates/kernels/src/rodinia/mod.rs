//! The Rodinia-subset benchmarks of §6.1.

pub mod bfs;
pub mod gaussian;
pub mod nearn;
pub mod saxpy;
pub mod sfilter;
pub mod sgemm;
pub mod vecadd;

pub use bfs::Bfs;
pub use gaussian::Gaussian;
pub use nearn::Nearn;
pub use saxpy::Saxpy;
pub use sfilter::Sfilter;
pub use sgemm::Sgemm;
pub use vecadd::Vecadd;

use crate::harness::Benchmark;

/// All seven benchmarks at simulation-friendly default sizes, in the
/// paper's order (compute-bound group first).
pub fn all_rodinia() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(Sgemm::default()),
        Box::new(Vecadd::default()),
        Box::new(Sfilter::default()),
        Box::new(Saxpy::default()),
        Box::new(Nearn::default()),
        Box::new(Gaussian::default()),
        Box::new(Bfs::default()),
    ]
}

/// Small-size variants for fast functional testing.
pub fn all_rodinia_small() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(Sgemm::new(8)),
        Box::new(Vecadd::new(64)),
        Box::new(Sfilter::new(10)),
        Box::new(Saxpy::new(64)),
        Box::new(Nearn::new(64)),
        Box::new(Gaussian::new(6)),
        Box::new(Bfs::new(40, 3)),
    ]
}
