//! `sfilter`: 3×3 box filter over a 2D image (compute-bound group).
//!
//! One work-item per *interior* pixel, so control flow stays uniform: the
//! output is `(n-2) × (n-2)` averages of the nine surrounding input
//! pixels.

use crate::harness::{BenchClass, BenchResult, Benchmark};
use crate::util::{self, R_IDX};
use vortex_asm::Assembler;
use vortex_core::GpuConfig;
use vortex_isa::{FReg, Reg};
use vortex_runtime::{abi, emit_spawn_tasks, ArgWriter, Device};

/// The `sfilter` benchmark over an `n × n` image.
#[derive(Debug, Clone, Copy)]
pub struct Sfilter {
    /// Image side length (must be ≥ 3).
    pub n: usize,
}

impl Sfilter {
    /// Filters an `n × n` image.
    ///
    /// # Panics
    /// Panics if `n < 3` — there would be no interior pixels.
    pub fn new(n: usize) -> Self {
        assert!(n >= 3, "sfilter needs at least a 3x3 image");
        Self { n }
    }
}

impl Default for Sfilter {
    fn default() -> Self {
        Self::new(64)
    }
}

/// Builds the sfilter program. Argument block: `src, dst, n`.
/// Work-item `i` maps to interior pixel `(row, col) = (i/(n-2)+1, i%(n-2)+1)`
/// and writes `dst[(row-1)*(n-2) + (col-1)]`.
pub fn program() -> vortex_asm::Program {
    let mut asm = Assembler::new();
    emit_spawn_tasks(&mut asm, "body").expect("stub emits once");
    asm.label("body").expect("fresh label");
    util::emit_load_args(&mut asm, 3); // x11=src x12=dst x13=n
    asm.addi(Reg::X14, Reg::X13, -2); // m = n-2
    asm.mul(Reg::X17, Reg::X14, Reg::X14); // total = m*m
    // 1/9 constant into f3.
    asm.li(Reg::X5, (1.0f32 / 9.0).to_bits() as i32);
    asm.fmv_w_x(FReg::X3, Reg::X5);
    util::emit_gtid_stride(&mut asm);
    util::emit_loop_head(&mut asm, Reg::X17, "sf").expect("fresh tag");
    // row = i/m + 1, col = i%m + 1.
    asm.divu(Reg::X15, R_IDX, Reg::X14);
    asm.remu(Reg::X16, R_IDX, Reg::X14);
    asm.addi(Reg::X15, Reg::X15, 1);
    asm.addi(Reg::X16, Reg::X16, 1);
    // top-left input pointer: src + ((row-1)*n + (col-1)) * 4.
    asm.addi(Reg::X18, Reg::X15, -1);
    asm.mul(Reg::X18, Reg::X18, Reg::X13);
    asm.addi(Reg::X19, Reg::X16, -1);
    asm.add(Reg::X18, Reg::X18, Reg::X19);
    asm.slli(Reg::X18, Reg::X18, 2);
    asm.add(Reg::X18, Reg::X18, Reg::X11);
    // acc = 0; row stride in bytes.
    asm.fmv_w_x(FReg::X2, Reg::X0);
    asm.slli(Reg::X20, Reg::X13, 2);
    for dy in 0..3 {
        for dx in 0..3i32 {
            asm.flw(FReg::X0, Reg::X18, dx * 4);
            asm.fadd(FReg::X2, FReg::X2, FReg::X0);
        }
        if dy < 2 {
            asm.add(Reg::X18, Reg::X18, Reg::X20);
        }
    }
    asm.fmul(FReg::X2, FReg::X2, FReg::X3); // acc / 9
    // dst[i] = acc.
    asm.slli(Reg::X21, R_IDX, 2);
    asm.add(Reg::X21, Reg::X21, Reg::X12);
    asm.fsw(FReg::X2, Reg::X21, 0);
    util::emit_loop_tail(&mut asm, Reg::X17, "sf").expect("fresh tag");
    asm.ret();
    asm.assemble(abi::CODE_BASE).expect("sfilter assembles")
}

/// Host reference with the kernel's exact accumulation order.
pub fn reference(src: &[f32], n: usize) -> Vec<f32> {
    let m = n - 2;
    let mut dst = vec![0.0f32; m * m];
    for row in 1..n - 1 {
        for col in 1..n - 1 {
            let mut acc = 0.0f32;
            for dy in 0..3 {
                for dx in 0..3 {
                    acc += src[(row - 1 + dy) * n + (col - 1 + dx)];
                }
            }
            dst[(row - 1) * m + (col - 1)] = acc * (1.0 / 9.0);
        }
    }
    dst
}

impl Benchmark for Sfilter {
    fn name(&self) -> &'static str {
        "sfilter"
    }

    fn class(&self) -> BenchClass {
        BenchClass::ComputeBound
    }

    fn run_on(&self, config: &GpuConfig) -> BenchResult {
        let n = self.n;
        let m = n - 2;
        let mut dev = Device::new(config.clone());
        let src = util::random_floats(n * n);
        let buf_src = dev.alloc((n * n * 4) as u32).expect("alloc src");
        let buf_dst = dev.alloc((m * m * 4) as u32).expect("alloc dst");
        dev.upload(buf_src, &util::floats_to_bytes(&src)).expect("upload");

        let mut args = ArgWriter::new();
        args.word(buf_src.addr).word(buf_dst.addr).word(n as u32);
        dev.write_args(&args);

        let prog = program();
        dev.load_program(&prog);
        let report = dev.run_kernel(prog.entry).expect("sfilter finishes");

        let got = dev.download_floats(buf_dst).expect("download in range");
        let expect = reference(&src, n);
        BenchResult {
            series: dev.time_series().cloned(),
            profile: dev.profile(),
            name: self.name().into(),
            stats: report.stats,
            validated: util::approx_eq_slices(&got, &expect, 1e-5),
            work: m * m,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sfilter_validates() {
        let r = Sfilter::new(8).run_on(&GpuConfig::with_cores(1));
        assert!(r.validated);
    }
}
