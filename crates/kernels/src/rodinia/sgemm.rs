//! `sgemm`: dense single-precision matrix multiply `C = A × B`
//! (compute-bound group — the benchmark the paper uses to headline IPC).

use crate::harness::{BenchClass, BenchResult, Benchmark};
use crate::util::{self, R_IDX};
use vortex_asm::Assembler;
use vortex_core::GpuConfig;
use vortex_isa::{FReg, Reg};
use vortex_runtime::{abi, emit_spawn_tasks, ArgWriter, Device};

/// The `sgemm` benchmark over `n × n` matrices.
#[derive(Debug, Clone, Copy)]
pub struct Sgemm {
    /// Matrix dimension.
    pub n: usize,
}

impl Sgemm {
    /// `n × n` matrices; one work-item per output element.
    pub fn new(n: usize) -> Self {
        Self { n }
    }
}

impl Default for Sgemm {
    fn default() -> Self {
        Self::new(32)
    }
}

/// Builds the sgemm program. Argument block: `a, b, c, n`.
/// Work-item `i` computes `C[i/n][i%n]`.
pub fn program() -> vortex_asm::Program {
    let mut asm = Assembler::new();
    emit_spawn_tasks(&mut asm, "body").expect("stub emits once");
    asm.label("body").expect("fresh label");
    util::emit_load_args(&mut asm, 4); // x11=a x12=b x13=c x14=n
    asm.mul(Reg::X17, Reg::X14, Reg::X14); // total = n*n
    util::emit_gtid_stride(&mut asm);
    util::emit_loop_head(&mut asm, Reg::X17, "mm").expect("fresh tag");
    // row = i / n, col = i % n.
    asm.divu(Reg::X15, R_IDX, Reg::X14);
    asm.remu(Reg::X16, R_IDX, Reg::X14);
    // acc = 0.
    asm.fmv_w_x(FReg::X2, Reg::X0);
    // &A[row][0] = a + row*n*4 ; &B[0][col] = b + col*4.
    asm.mul(Reg::X18, Reg::X15, Reg::X14);
    asm.slli(Reg::X18, Reg::X18, 2);
    asm.add(Reg::X18, Reg::X18, Reg::X11); // A row pointer
    asm.slli(Reg::X19, Reg::X16, 2);
    asm.add(Reg::X19, Reg::X19, Reg::X12); // B column pointer
    asm.slli(Reg::X20, Reg::X14, 2); // B row stride in bytes
    asm.li(Reg::X21, 0); // k
    // Main loop unrolled ×4 (the unrolling a production compiler emits);
    // a remainder loop covers n % 4 != 0.
    asm.addi(Reg::X23, Reg::X14, -3); // n - 3
    asm.label("kloop4").expect("fresh label");
    asm.bge(Reg::X21, Reg::X23, "ktail");
    for _ in 0..4 {
        asm.flw(FReg::X0, Reg::X18, 0); // A[row][k]
        asm.flw(FReg::X1, Reg::X19, 0); // B[k][col]
        asm.fmadd(FReg::X2, FReg::X0, FReg::X1, FReg::X2);
        asm.addi(Reg::X18, Reg::X18, 4);
        asm.add(Reg::X19, Reg::X19, Reg::X20);
    }
    asm.addi(Reg::X21, Reg::X21, 4);
    asm.j("kloop4");
    asm.label("ktail").expect("fresh label");
    asm.bge(Reg::X21, Reg::X14, "kdone");
    asm.flw(FReg::X0, Reg::X18, 0);
    asm.flw(FReg::X1, Reg::X19, 0);
    asm.fmadd(FReg::X2, FReg::X0, FReg::X1, FReg::X2);
    asm.addi(Reg::X18, Reg::X18, 4);
    asm.add(Reg::X19, Reg::X19, Reg::X20);
    asm.addi(Reg::X21, Reg::X21, 1);
    asm.j("ktail");
    asm.label("kdone").expect("fresh label");
    // C[i] = acc.
    asm.slli(Reg::X22, R_IDX, 2);
    asm.add(Reg::X22, Reg::X22, Reg::X13);
    asm.fsw(FReg::X2, Reg::X22, 0);
    util::emit_loop_tail(&mut asm, Reg::X17, "mm").expect("fresh tag");
    asm.ret();
    asm.assemble(abi::CODE_BASE).expect("sgemm assembles")
}

/// Host reference: row-major `n × n` multiply with FMA accumulation (the
/// same operation order as the kernel, so results match bit-for-bit).
pub fn reference(a: &[f32], b: &[f32], n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; n * n];
    for row in 0..n {
        for col in 0..n {
            let mut acc = 0.0f32;
            for k in 0..n {
                acc = a[row * n + k].mul_add(b[k * n + col], acc);
            }
            c[row * n + col] = acc;
        }
    }
    c
}

impl Benchmark for Sgemm {
    fn name(&self) -> &'static str {
        "sgemm"
    }

    fn class(&self) -> BenchClass {
        BenchClass::ComputeBound
    }

    fn run_on(&self, config: &GpuConfig) -> BenchResult {
        let n = self.n;
        let mut dev = Device::new(config.clone());
        let a = util::random_floats(n * n);
        let b = util::random_floats(n * n);
        let bytes = (n * n * 4) as u32;
        let buf_a = dev.alloc(bytes).expect("alloc a");
        let buf_b = dev.alloc(bytes).expect("alloc b");
        let buf_c = dev.alloc(bytes).expect("alloc c");
        dev.upload(buf_a, &util::floats_to_bytes(&a)).expect("upload");
        dev.upload(buf_b, &util::floats_to_bytes(&b)).expect("upload");

        let mut args = ArgWriter::new();
        args.word(buf_a.addr)
            .word(buf_b.addr)
            .word(buf_c.addr)
            .word(n as u32);
        dev.write_args(&args);

        let prog = program();
        dev.load_program(&prog);
        let report = dev.run_kernel(prog.entry).expect("sgemm finishes");

        let c = dev.download_floats(buf_c).expect("download in range");
        let expect = reference(&a, &b, n);
        BenchResult {
            series: dev.time_series().cloned(),
            profile: dev.profile(),
            name: self.name().into(),
            stats: report.stats,
            validated: util::approx_eq_slices(&c, &expect, 1e-5),
            work: n * n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgemm_validates_small() {
        let r = Sgemm::new(6).run_on(&GpuConfig::with_cores(1));
        assert!(r.validated);
    }

    #[test]
    fn sgemm_validates_multicore() {
        let r = Sgemm::new(8).run_on(&GpuConfig::with_cores(2));
        assert!(r.validated);
    }
}
