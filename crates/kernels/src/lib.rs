//! # vortex-kernels
//!
//! The benchmark programs of the paper's evaluation (§6.1), implemented
//! directly against the Vortex ISA through the `vortex-asm` kernel builder
//! — the binary interface the paper's POCL/LLVM flow would emit.
//!
//! *"For the benchmarks, we use a subset of the Rodinia OpenCL kernels. We
//! classified the benchmarks into a compute-bounded group that includes
//! `sgemm`, `vecadd`, and `sfilter`, and a memory-bounded group that
//! includes `saxpy`, `nearn`, `gaussian`, and `bfs`."*
//!
//! Each benchmark bundles: a synthetic input generator (seeded, so runs
//! are reproducible), the device kernel, a host-side reference
//! implementation, and validation of the device results against it.
//! The texture benchmarks (§6.4) render a source texture into an
//! equal-sized target with point, bilinear, or trilinear filtering, in
//! both hardware (`tex` instruction) and all-software variants — the two
//! sides of Figure 20.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod reduce;
pub mod rodinia;
pub mod texture;
pub mod util;

pub use harness::{BenchClass, BenchResult, Benchmark};
pub use reduce::Reduce;
pub use rodinia::{all_rodinia, Bfs, Gaussian, Nearn, Saxpy, Sfilter, Sgemm, Vecadd};
pub use texture::{FilterKind, TexBench};
