//! `reduce`: block-wise parallel sum using the per-core shared-memory
//! scratchpad and wavefront barriers — the cooperative-threading pattern
//! the paper's shared memory (§4.1.4) and `bar` instruction exist for.
//!
//! Every hardware thread accumulates a strided slice of the input, stores
//! its partial into shared memory (or, in the ablation variant, into a
//! global scratch region), all wavefronts of the core synchronize at a
//! local barrier, and the core's leader thread reduces the partials into a
//! per-core result that the host finishes.

use crate::harness::{BenchClass, BenchResult, Benchmark};
use crate::util::{self, R_IDX};
use vortex_asm::Assembler;
use vortex_core::{GpuConfig, SMEM_BASE};
use vortex_isa::{csr, Reg};
use vortex_runtime::{abi, emit_spawn_tasks, ArgWriter, Device};

/// The `reduce` benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Reduce {
    /// Number of `u32` elements to sum.
    pub n: usize,
    /// `true` stages partials in shared memory; `false` in global memory
    /// (the ablation baseline).
    pub use_smem: bool,
}

impl Reduce {
    /// Sums `n` elements with shared-memory staging.
    pub fn new(n: usize) -> Self {
        Self { n, use_smem: true }
    }

    /// The global-memory staging variant.
    pub fn global(n: usize) -> Self {
        Self { n, use_smem: false }
    }
}

impl Default for Reduce {
    fn default() -> Self {
        Self::new(16384)
    }
}

/// Builds the reduction program. Argument block:
/// `in, out_per_core, n, scratch_global` — staging location chosen at
/// build time (`use_smem`).
pub fn program(use_smem: bool) -> vortex_asm::Program {
    let mut asm = Assembler::new();
    emit_spawn_tasks(&mut asm, "body").expect("stub emits once");
    asm.label("body").expect("fresh label");
    util::emit_load_args(&mut asm, 4); // x11=in x12=out x13=n x14=scratch
    util::emit_gtid_stride(&mut asm);
    // Per-thread accumulation.
    asm.li(Reg::X20, 0);
    util::emit_loop_head(&mut asm, Reg::X13, "rd").expect("fresh tag");
    asm.slli(Reg::X5, R_IDX, 2);
    asm.add(Reg::X5, Reg::X5, Reg::X11);
    asm.lw(Reg::X6, Reg::X5, 0);
    asm.add(Reg::X20, Reg::X20, Reg::X6);
    util::emit_loop_tail(&mut asm, Reg::X13, "rd").expect("fresh tag");
    // Local partial slot: lidx = wid * NT + tid.
    asm.csrr(Reg::X21, csr::VX_WID);
    asm.csrr(Reg::X22, csr::VX_NT);
    asm.mul(Reg::X21, Reg::X21, Reg::X22);
    asm.csrr(Reg::X23, csr::VX_TID);
    asm.add(Reg::X21, Reg::X21, Reg::X23);
    // Staging base: shared memory, or scratch + cid * 4096 in global.
    if use_smem {
        asm.li(Reg::X24, SMEM_BASE as i32);
    } else {
        asm.csrr(Reg::X5, csr::VX_CID);
        asm.slli(Reg::X5, Reg::X5, 12);
        asm.add(Reg::X24, Reg::X14, Reg::X5);
    }
    asm.slli(Reg::X5, Reg::X21, 2);
    asm.add(Reg::X5, Reg::X5, Reg::X24);
    asm.sw(Reg::X20, Reg::X5, 0);
    // Core-local barrier: all NW wavefronts arrive.
    asm.li(Reg::X6, 0);
    asm.csrr(Reg::X7, csr::VX_NW);
    asm.bar(Reg::X6, Reg::X7);
    // Leader (wid 0, tid 0) reduces the core's partials.
    asm.csrr(Reg::X5, csr::VX_WID);
    asm.seqz(Reg::X5, Reg::X5);
    asm.csrr(Reg::X6, csr::VX_TID);
    asm.seqz(Reg::X6, Reg::X6);
    asm.and(Reg::X5, Reg::X5, Reg::X6);
    asm.split(Reg::X5);
    asm.beqz(Reg::X5, "not_leader");
    asm.csrr(Reg::X25, csr::VX_NW);
    asm.csrr(Reg::X26, csr::VX_NT);
    asm.mul(Reg::X25, Reg::X25, Reg::X26); // partial count
    asm.li(Reg::X27, 0); // total
    asm.mv(Reg::X28, Reg::X24); // walker
    asm.label("sum").expect("fresh label");
    asm.blez(Reg::X25, "sum_done");
    asm.lw(Reg::X29, Reg::X28, 0);
    asm.add(Reg::X27, Reg::X27, Reg::X29);
    asm.addi(Reg::X28, Reg::X28, 4);
    asm.addi(Reg::X25, Reg::X25, -1);
    asm.j("sum");
    asm.label("sum_done").expect("fresh label");
    // out[cid] = total.
    asm.csrr(Reg::X30, csr::VX_CID);
    asm.slli(Reg::X30, Reg::X30, 2);
    asm.add(Reg::X30, Reg::X30, Reg::X12);
    asm.sw(Reg::X27, Reg::X30, 0);
    asm.label("not_leader").expect("fresh label");
    asm.join();
    asm.ret();
    asm.assemble(abi::CODE_BASE).expect("reduce assembles")
}

impl Benchmark for Reduce {
    fn name(&self) -> &'static str {
        if self.use_smem {
            "reduce-smem"
        } else {
            "reduce-global"
        }
    }

    fn class(&self) -> BenchClass {
        BenchClass::MemoryBound
    }

    fn run_on(&self, config: &GpuConfig) -> BenchResult {
        let n = self.n;
        let mut dev = Device::new(config.clone());
        let mut rng_state = 0x1357_9BDFu32;
        let data: Vec<u32> = (0..n)
            .map(|_| {
                rng_state ^= rng_state << 13;
                rng_state ^= rng_state >> 17;
                rng_state ^= rng_state << 5;
                rng_state & 0xFFFF // keep sums comfortably in u32
            })
            .collect();
        let buf_in = dev.alloc((n * 4) as u32).expect("alloc in");
        dev.upload(buf_in, &util::words_to_bytes(&data)).expect("upload");
        let cores = config.num_cores;
        let buf_out = dev.alloc((cores * 4) as u32).expect("alloc out");
        dev.upload(buf_out, &vec![0u8; cores * 4]).expect("zero out");
        let scratch = dev.alloc((cores * 4096) as u32).expect("alloc scratch");

        let mut args = ArgWriter::new();
        args.word(buf_in.addr)
            .word(buf_out.addr)
            .word(n as u32)
            .word(scratch.addr);
        dev.write_args(&args);

        let prog = program(self.use_smem);
        dev.load_program(&prog);
        let report = dev.run_kernel(prog.entry).expect("reduce finishes");

        let total: u32 = dev
            .download_words(buf_out)
            .expect("download in range")
            .iter()
            .fold(0u32, |acc, &v| acc.wrapping_add(v));
        let expect: u32 = data.iter().fold(0u32, |acc, &v| acc.wrapping_add(v));
        BenchResult {
            series: dev.time_series().cloned(),
            profile: dev.profile(),
            name: self.name().into(),
            stats: report.stats,
            validated: total == expect,
            work: n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smem_reduction_validates() {
        let r = Reduce::new(300).run_on(&GpuConfig::with_cores(1));
        assert!(r.validated);
        assert!(r.stats.cores[0].smem_accesses > 0, "smem actually used");
        assert!(r.stats.cores[0].barriers >= 4, "all wavefronts barriered");
    }

    #[test]
    fn global_reduction_validates() {
        let r = Reduce::global(300).run_on(&GpuConfig::with_cores(1));
        assert!(r.validated);
        assert_eq!(r.stats.cores[0].smem_accesses, 0);
    }

    #[test]
    fn multicore_reduction_validates() {
        for bench in [Reduce::new(1000), Reduce::global(1000)] {
            let r = bench.run_on(&GpuConfig::with_cores(4));
            assert!(r.validated, "{}", r.name);
        }
    }
}
