//! Shared kernel-authoring helpers and input generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vortex_asm::{AsmError, Assembler};
use vortex_isa::{csr, Reg};

/// Work-index register inside a stride loop (`s0`).
pub const R_IDX: Reg = Reg::X8;
/// Stride register inside a stride loop (`s1`).
pub const R_STRIDE: Reg = Reg::X9;

/// Emits `R_IDX = gtid; R_STRIDE = NC * NW * NT` — the standard work-item
/// mapping (`for (i = gtid; i < n; i += stride)`).
pub fn emit_gtid_stride(a: &mut Assembler) {
    a.csrr(R_IDX, csr::VX_GTID);
    a.csrr(R_STRIDE, csr::VX_NC);
    a.csrr(Reg::X28, csr::VX_NW);
    a.mul(R_STRIDE, R_STRIDE, Reg::X28);
    a.csrr(Reg::X28, csr::VX_NT);
    a.mul(R_STRIDE, R_STRIDE, Reg::X28);
}

/// Opens the stride loop over `R_IDX < n_reg`.
///
/// Lanes of one wavefront hold different indices, so the bounds check is
/// *divergent* whenever `n` is not a multiple of the machine width: the
/// body is therefore guarded with `split` on the per-lane predicate, and
/// the loop-back test in [`emit_loop_tail`] uses the wavefront's *base*
/// index (`R_IDX - tid`, uniform across lanes) so the backward branch
/// never diverges — the codegen pattern a SIMT compiler emits for
/// work-item loops.
///
/// The body may clobber every register except `R_IDX`, `R_STRIDE`, `a0`,
/// `n_reg` and any of its own live values; `x28` is reused by the loop
/// tail.
///
/// # Errors
/// Fails on duplicate `tag`.
pub fn emit_loop_head(a: &mut Assembler, n_reg: Reg, tag: &str) -> Result<(), AsmError> {
    a.label(&format!("__loop_{tag}"))?;
    a.slt(Reg::X28, R_IDX, n_reg); // per-lane in-range predicate
    a.split(Reg::X28);
    a.beqz(Reg::X28, &format!("__loop_skip_{tag}"));
    Ok(())
}

/// Closes the stride loop opened with the same `tag` (same `n_reg`).
///
/// # Errors
/// Fails on duplicate `tag`.
pub fn emit_loop_tail(a: &mut Assembler, n_reg: Reg, tag: &str) -> Result<(), AsmError> {
    a.label(&format!("__loop_skip_{tag}"))?;
    a.join();
    a.add(R_IDX, R_IDX, R_STRIDE);
    // Uniform exit test: the wavefront's smallest lane index.
    a.csrr(Reg::X28, csr::VX_TID);
    a.sub(Reg::X28, R_IDX, Reg::X28);
    a.blt(Reg::X28, n_reg, &format!("__loop_{tag}"));
    Ok(())
}

/// Loads `count` consecutive words of the argument block (pointed to by
/// `a0`) into `x11, x12, ...`.
///
/// # Panics
/// Panics if `count > 7` (registers x11..x17).
pub fn emit_load_args(a: &mut Assembler, count: usize) {
    assert!(count <= 7, "argument registers x11..x17 exhausted");
    for i in 0..count {
        a.lw(Reg::from_index(11 + i as u32), Reg::X10, (i * 4) as i32);
    }
}

/// Deterministic RNG for input generation (seeded: runs are reproducible).
pub fn rng() -> StdRng {
    StdRng::seed_from_u64(0x5EED_CAFE)
}

/// `n` uniform floats in [0, 1).
pub fn random_floats(n: usize) -> Vec<f32> {
    let mut r = rng();
    (0..n).map(|_| r.random::<f32>()).collect()
}

/// Serializes f32s to little-endian bytes.
pub fn floats_to_bytes(v: &[f32]) -> Vec<u8> {
    v.iter().flat_map(|f| f.to_bits().to_le_bytes()).collect()
}

/// Serializes u32s to little-endian bytes.
pub fn words_to_bytes(v: &[u32]) -> Vec<u8> {
    v.iter().flat_map(|w| w.to_le_bytes()).collect()
}

/// `true` when `a` and `b` agree within `tol` relative error.
pub fn approx_eq(a: f32, b: f32, tol: f32) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= tol * scale
}

/// Element-wise [`approx_eq`] over slices.
pub fn approx_eq_slices(a: &[f32], b: &[f32], tol: f32) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| approx_eq(*x, *y, tol))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        assert_eq!(random_floats(16), random_floats(16));
    }

    #[test]
    fn float_serialization_is_le() {
        let b = floats_to_bytes(&[1.0]);
        assert_eq!(b, 1.0f32.to_bits().to_le_bytes());
    }

    #[test]
    fn approx_eq_scales_tolerance() {
        assert!(approx_eq(1000.0, 1000.5, 1e-3));
        assert!(!approx_eq(1.0, 1.5, 1e-3));
        assert!(approx_eq(0.0, 1e-7, 1e-6));
    }

    #[test]
    fn loop_emitters_produce_balanced_labels() {
        let mut a = Assembler::new();
        emit_gtid_stride(&mut a);
        a.li(Reg::X11, 10);
        emit_loop_head(&mut a, Reg::X11, "t").unwrap();
        a.nop();
        emit_loop_tail(&mut a, Reg::X11, "t").unwrap();
        a.ecall();
        assert!(a.assemble(0).is_ok());
    }
}
