//! The synthetic texture-filtering benchmarks of §6.4 / Figure 20.
//!
//! Each benchmark samples a source texture into an equal-sized render
//! target (the paper uses 1080p; the default here is a simulation-friendly
//! size with the same structure) in one of three filter modes — point,
//! bilinear, trilinear — and in two implementations:
//!
//! * **HW** — the `tex` instruction drives the texture unit; trilinear is
//!   the two-`tex` + LERP pseudo-instruction of Algorithm 1;
//! * **SW** — the full sampling arithmetic runs as ordinary instructions:
//!   address generation, wrap clamping, four texel loads and the
//!   fixed-point channel interpolation, exactly what a software rendering
//!   pipeline without the texture unit executes.

use crate::harness::{BenchClass, BenchResult, Benchmark};
use crate::util::{self, R_IDX};
use rand::Rng;
use vortex_asm::Assembler;
use vortex_core::GpuConfig;
use vortex_isa::{csr, FReg, Reg};
use vortex_runtime::{abi, emit_spawn_tasks, ArgWriter, Device};
use vortex_tex::{Rgba8, TexFormat, TexState};

/// Filter mode under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterKind {
    /// Nearest-texel sampling.
    Point,
    /// 2×2 bilinear.
    Bilinear,
    /// Bilinear across two mip levels (Algorithm 1).
    Trilinear,
}

impl FilterKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            FilterKind::Point => "point",
            FilterKind::Bilinear => "bilinear",
            FilterKind::Trilinear => "trilinear",
        }
    }
}

/// One texture benchmark configuration.
#[derive(Debug, Clone, Copy)]
pub struct TexBench {
    /// Filter mode.
    pub filter: FilterKind,
    /// `true` = hardware texture unit, `false` = all-software sampling.
    pub hw: bool,
    /// log2 of the square source texture size.
    pub log_size: u32,
    /// Render-target dimensions. `None` = same as the source texture (the
    /// classic square benchmark); `Some((w, h))` = an arbitrary target —
    /// e.g. the paper's true 1920×1080 frame — sampled with per-axis
    /// scaling. The kernel is specialized at build time, so the default
    /// path's instruction stream is untouched by this option.
    pub target: Option<(u32, u32)>,
}

impl TexBench {
    /// A `2^log_size × 2^log_size` benchmark.
    pub fn new(filter: FilterKind, hw: bool, log_size: u32) -> Self {
        Self {
            filter,
            hw,
            log_size,
            target: None,
        }
    }

    /// Renders into a `w × h` target instead of a square one (the paper's
    /// 1080p setup: a 1920×1080 frame sampling a square texture).
    ///
    /// # Panics
    /// Panics when either dimension is zero.
    #[must_use]
    pub fn with_target(mut self, w: u32, h: u32) -> Self {
        assert!(w > 0 && h > 0, "render target must be non-empty");
        self.target = Some((w, h));
        self
    }

    fn size(&self) -> usize {
        1 << self.log_size
    }

    fn target_dims(&self) -> (u32, u32) {
        self.target
            .unwrap_or((1 << self.log_size, 1 << self.log_size))
    }
}

/// The per-axis 8.8 fixed-point scale the SW bilinear path applies to
/// `(pixel + 0.5)`: texel coordinates per target pixel, times 256. Shared
/// by the kernel emitter and the host oracle so the constants (and thus
/// the rounding) are identical. In the square case this reduces to the
/// classic `256 / 2^level`, bit for bit.
fn sw_scale(log_size: u32, level: u32, target: Option<(u32, u32)>) -> (f32, f32) {
    match target {
        None => {
            let s = 256.0f32 / (1u32 << level) as f32;
            (s, s)
        }
        Some((w, h)) => {
            let dim = (1u32 << (log_size - level)) as f32 * 256.0;
            (dim / w as f32, dim / h as f32)
        }
    }
}

/// Generates a random RGBA8 texture with its full mip chain (2×2 box
/// down-sampling), contiguous in the layout `TexState` expects.
/// Returns `(bytes, level0_len_bytes)`.
pub fn build_texture_with_mips(log_size: u32) -> Vec<u8> {
    let mut rng = util::rng();
    let size = 1usize << log_size;
    let mut levels: Vec<Vec<Rgba8>> = Vec::new();
    let base: Vec<Rgba8> = (0..size * size)
        .map(|_| Rgba8::new(rng.random(), rng.random(), rng.random(), 255))
        .collect();
    levels.push(base);
    let mut w = size;
    while w > 1 {
        let prev = levels.last().expect("at least level 0");
        let nw = w / 2;
        let mut next = Vec::with_capacity(nw * nw);
        for y in 0..nw {
            for x in 0..nw {
                let avg = |f: fn(Rgba8) -> u8| -> u8 {
                    let s = u32::from(f(prev[(2 * y) * w + 2 * x]))
                        + u32::from(f(prev[(2 * y) * w + 2 * x + 1]))
                        + u32::from(f(prev[(2 * y + 1) * w + 2 * x]))
                        + u32::from(f(prev[(2 * y + 1) * w + 2 * x + 1]));
                    ((s + 2) / 4) as u8
                };
                next.push(Rgba8::new(
                    avg(|c| c.r),
                    avg(|c| c.g),
                    avg(|c| c.b),
                    avg(|c| c.a),
                ));
            }
        }
        levels.push(next);
        w = nw;
    }
    levels
        .iter()
        .flat_map(|lvl| lvl.iter().flat_map(|c| c.to_u32().to_le_bytes()))
        .collect()
}

/// Emits an integer lerp of two packed RGBA8 colors:
/// `out = a + (((b - a) * frac) >> 8)` per channel — the arithmetic of the
/// hardware sampler's interpolator, reused by the graphics rasterizer for
/// fog blending. Clobbers `s1..s3`.
#[allow(clippy::too_many_arguments)] // mirrors the hardware port list
pub fn emit_color_lerp(
    asm: &mut Assembler,
    a: Reg,
    b: Reg,
    frac: Reg,
    out: Reg,
    s1: Reg,
    s2: Reg,
    s3: Reg,
) {
    asm.li(out, 0);
    for shift in [0, 8, 16, 24] {
        // ca / cb.
        asm.srli(s1, a, shift);
        asm.andi(s1, s1, 255);
        asm.srli(s2, b, shift);
        asm.andi(s2, s2, 255);
        asm.sub(s2, s2, s1); // cb - ca
        asm.mul(s2, s2, frac);
        asm.srai(s2, s2, 8);
        asm.add(s1, s1, s2);
        asm.andi(s1, s1, 255);
        asm.slli(s3, s1, shift);
        asm.or(out, out, s3);
    }
}

/// Emits a branchless clamp of `v` into `[0, limit-1]`. Clobbers `s1, s2`.
fn emit_clamp(asm: &mut Assembler, v: Reg, limit: Reg, s1: Reg, s2: Reg) {
    // v = max(v, 0).
    asm.srai(s1, v, 31);
    asm.not(s1, s1);
    asm.and(v, v, s1);
    // v = min(v, limit-1).
    asm.addi(s1, limit, -1);
    asm.sub(s2, s1, v); // (limit-1) - v
    asm.srai(s1, s2, 31); // -1 when v too big
    asm.and(s2, s2, s1); // negative excess or 0
    asm.add(v, v, s2);
}

/// Emits one full software bilinear sample at mip `level`, mapping target
/// pixels to texel space with the per-axis `scale` from [`sw_scale`].
///
/// Inputs: pixel coords `x20`/`x21`, mip base pointer in `base`, `x12` =
/// log2(size). Result color in `out`. Clobbers x5-x7, x17 (unless it is
/// `base`), x22-x31, f0, f13.
fn emit_sw_bilinear(
    asm: &mut Assembler,
    tag: &str,
    base: Reg,
    level: u32,
    out: Reg,
    scale: (f32, f32),
) {
    // Level dims: w_l = 1 << (logw - level).
    asm.li(Reg::X5, 1);
    asm.addi(Reg::X22, Reg::X12, -(level as i32));
    asm.sll(Reg::X22, Reg::X5, Reg::X22); // w_l (square texture: h_l == w_l)
    // x_fp = trunc((x + 0.5) * scale) - 128  (8.8 fixed point).
    for (pix, fp, s) in [
        (Reg::X20, Reg::X24, scale.0),
        (Reg::X21, Reg::X25, scale.1),
    ] {
        asm.fcvt_s_wu(FReg::X0, pix);
        asm.li(Reg::X5, 0.5f32.to_bits() as i32);
        asm.fmv_w_x(FReg::X13, Reg::X5);
        asm.fadd(FReg::X0, FReg::X0, FReg::X13);
        asm.li(Reg::X5, s.to_bits() as i32);
        asm.fmv_w_x(FReg::X13, Reg::X5);
        asm.fmul(FReg::X0, FReg::X0, FReg::X13);
        asm.fcvt_w_s(fp, FReg::X0);
        asm.addi(fp, fp, -128);
    }
    // x0/x1/frac_u; y0/y1/frac_v.
    asm.srai(Reg::X26, Reg::X24, 8); // x0
    asm.andi(Reg::X30, Reg::X24, 255); // frac_u
    asm.srai(Reg::X28, Reg::X25, 8); // y0
    asm.andi(Reg::X31, Reg::X25, 255); // frac_v
    asm.addi(Reg::X27, Reg::X26, 1); // x1
    asm.addi(Reg::X29, Reg::X28, 1); // y1
    for v in [Reg::X26, Reg::X27, Reg::X28, Reg::X29] {
        emit_clamp(asm, v, Reg::X22, Reg::X5, Reg::X6);
    }
    // Four texel loads: t00=x24 t10=x25 t01=x26' t11=x27' — addresses
    // computed with the level's row shift (logw - level).
    asm.addi(Reg::X7, Reg::X12, -(level as i32)); // row shift
    let load = |asm: &mut Assembler, xr: Reg, yr: Reg, dst: Reg| {
        asm.sll(Reg::X5, yr, Reg::X7); // y * w_l (shift by row bits)
        asm.add(Reg::X5, Reg::X5, xr);
        asm.slli(Reg::X5, Reg::X5, 2);
        asm.add(Reg::X5, Reg::X5, base);
        asm.lw(dst, Reg::X5, 0);
    };
    load(asm, Reg::X26, Reg::X28, Reg::X24); // t00 (x0,y0)
    load(asm, Reg::X27, Reg::X28, Reg::X25); // t10 (x1,y0)
    load(asm, Reg::X27, Reg::X29, Reg::X23); // t11 (x1,y1) — x23 scratch
    load(asm, Reg::X26, Reg::X29, Reg::X22); // t01 (x0,y1) — x22 done with w_l
    let _ = tag;
    // top = lerp(t00, t10, fu); bottom = lerp(t01, t11, fu).
    emit_color_lerp(asm, Reg::X24, Reg::X25, Reg::X30, Reg::X28, Reg::X5, Reg::X6, Reg::X7);
    emit_color_lerp(asm, Reg::X22, Reg::X23, Reg::X30, Reg::X29, Reg::X5, Reg::X6, Reg::X7);
    emit_color_lerp(asm, Reg::X28, Reg::X29, Reg::X31, out, Reg::X5, Reg::X6, Reg::X7);
}

/// Builds the benchmark program.
///
/// Argument block (both variants): `src, log_size, dst, filter(0/1/2),
/// lod_bits (f32), frac8, src_mip1`; target mode appends `target_w,
/// target_h` at offsets 28/32. The target dimensions also specialize the
/// emitted code, so the square default's instruction stream is exactly
/// the historical one (the `vxbench` texture gate pins its cycle count).
pub fn program(bench: &TexBench) -> vortex_asm::Program {
    let target = bench.target;
    let mut asm = Assembler::new();
    emit_spawn_tasks(&mut asm, "body").expect("stub emits once");
    asm.label("body").expect("fresh label");
    util::emit_load_args(&mut asm, 7);
    // x11=src x12=log_size x13=dst x14=filter x15=lod_bits x16=frac8 x17=mip1
    // (arg order rearranged so x12 = log_size for the SW emitters).
    if target.is_some() {
        // Total pixels = target_w * target_h.
        asm.lw(Reg::X19, Reg::X10, 28);
        asm.lw(Reg::X5, Reg::X10, 32);
        asm.mul(Reg::X19, Reg::X19, Reg::X5);
    } else {
        // Total pixels = 1 << (2*log_size).
        asm.slli(Reg::X19, Reg::X12, 1);
        asm.li(Reg::X5, 1);
        asm.sll(Reg::X19, Reg::X5, Reg::X19);
    }
    util::emit_gtid_stride(&mut asm);

    if bench.hw {
        // Program the texture unit via CSRs (Figure 13, lines 3-9).
        asm.csrw(csr::tex_csr(0, csr::TexReg::Addr), Reg::X11);
        asm.li(Reg::X5, 1);
        asm.csrw(csr::tex_csr(0, csr::TexReg::MipOff), Reg::X5);
        asm.csrw(csr::tex_csr(0, csr::TexReg::LogWidth), Reg::X12);
        asm.csrw(csr::tex_csr(0, csr::TexReg::LogHeight), Reg::X12);
        asm.csrw(csr::tex_csr(0, csr::TexReg::Format), Reg::X0); // RGBA8
        asm.csrw(csr::tex_csr(0, csr::TexReg::Wrap), Reg::X0); // clamp
        // Filter CSR: bilinear for everything except point (trilinear uses
        // the bilinear sampler twice).
        let hw_filter = if bench.filter == FilterKind::Point { 0 } else { 1 };
        asm.li(Reg::X5, hw_filter);
        asm.csrw(csr::tex_csr(0, csr::TexReg::Filter), Reg::X5);
    }
    if target.is_some() {
        // Per-axis inverse target dims (f8 = 1/w, f15 = 1/h) and 0.5 —
        // shared by the HW u/v setup and the SW point path.
        asm.li(Reg::X5, 1.0f32.to_bits() as i32);
        asm.fmv_w_x(FReg::X6, Reg::X5);
        asm.lw(Reg::X5, Reg::X10, 28);
        asm.fcvt_s_wu(FReg::X8, Reg::X5);
        asm.fdiv(FReg::X8, FReg::X6, FReg::X8); // f8 = 1 / target_w
        asm.lw(Reg::X5, Reg::X10, 32);
        asm.fcvt_s_wu(FReg::X15, Reg::X5);
        asm.fdiv(FReg::X15, FReg::X6, FReg::X15); // f15 = 1 / target_h
        asm.li(Reg::X5, 0.5f32.to_bits() as i32);
        asm.fmv_w_x(FReg::X7, Reg::X5); // f7 = 0.5
    } else if bench.hw {
        // inv_size = 1.0 / 2^log_size; constants 0.5 and 1.0.
        asm.li(Reg::X5, 1);
        asm.sll(Reg::X5, Reg::X5, Reg::X12);
        asm.fcvt_s_wu(FReg::X8, Reg::X5);
        asm.li(Reg::X5, 1.0f32.to_bits() as i32);
        asm.fmv_w_x(FReg::X6, Reg::X5);
        asm.fdiv(FReg::X8, FReg::X6, FReg::X8); // f8 = inv_size
        asm.li(Reg::X5, 0.5f32.to_bits() as i32);
        asm.fmv_w_x(FReg::X7, Reg::X5); // f7 = 0.5
    }

    util::emit_loop_head(&mut asm, Reg::X19, "tx").expect("fresh tag");
    if target.is_some() {
        // x = i % target_w; y = i / target_w (no power-of-two shortcut).
        asm.lw(Reg::X5, Reg::X10, 28);
        asm.remu(Reg::X20, R_IDX, Reg::X5);
        asm.divu(Reg::X21, R_IDX, Reg::X5);
    } else {
        // x = i & (size-1); y = i >> log_size.
        asm.li(Reg::X5, 1);
        asm.sll(Reg::X5, Reg::X5, Reg::X12);
        asm.addi(Reg::X5, Reg::X5, -1);
        asm.and(Reg::X20, R_IDX, Reg::X5);
        asm.srl(Reg::X21, R_IDX, Reg::X12);
    }

    // The v axis divides by the height — same register as u for a square
    // target, f15 in target mode.
    let inv_v = if target.is_some() { FReg::X15 } else { FReg::X8 };
    if bench.hw {
        // u/v = (coord + 0.5) * inv_dim, as f32 bit patterns.
        asm.fcvt_s_wu(FReg::X0, Reg::X20);
        asm.fadd(FReg::X0, FReg::X0, FReg::X7);
        asm.fmul(FReg::X0, FReg::X0, FReg::X8);
        asm.fmv_x_w(Reg::X24, FReg::X0);
        asm.fcvt_s_wu(FReg::X1, Reg::X21);
        asm.fadd(FReg::X1, FReg::X1, FReg::X7);
        asm.fmul(FReg::X1, FReg::X1, inv_v);
        asm.fmv_x_w(Reg::X25, FReg::X1);
        match bench.filter {
            FilterKind::Point | FilterKind::Bilinear => {
                asm.tex(0, Reg::X26, Reg::X24, Reg::X25, Reg::X15);
            }
            FilterKind::Trilinear => {
                // Algorithm 1: a = TEX(lod); b = TEX(lod+1); LERP(frac).
                asm.tex(0, Reg::X26, Reg::X24, Reg::X25, Reg::X15);
                asm.fmv_w_x(FReg::X2, Reg::X15);
                asm.li(Reg::X5, 1.0f32.to_bits() as i32);
                asm.fmv_w_x(FReg::X3, Reg::X5);
                asm.fadd(FReg::X2, FReg::X2, FReg::X3);
                asm.fmv_x_w(Reg::X27, FReg::X2);
                asm.tex(0, Reg::X28, Reg::X24, Reg::X25, Reg::X27);
                emit_color_lerp(
                    &mut asm,
                    Reg::X26,
                    Reg::X28,
                    Reg::X16,
                    Reg::X29,
                    Reg::X5,
                    Reg::X6,
                    Reg::X7,
                );
                asm.mv(Reg::X26, Reg::X29);
            }
        }
    } else {
        match bench.filter {
            FilterKind::Point if target.is_some() => {
                // Real SW point sampling: the target pixel maps through
                // normalized coordinates into the texture.
                // xi = trunc((x + 0.5) * inv_w * size), clamped.
                asm.li(Reg::X5, 1);
                asm.sll(Reg::X22, Reg::X5, Reg::X12); // size
                asm.fcvt_s_wu(FReg::X13, Reg::X22);
                for (pix, inv, xi) in [(Reg::X20, FReg::X8, Reg::X24), (Reg::X21, FReg::X15, Reg::X25)] {
                    asm.fcvt_s_wu(FReg::X0, pix);
                    asm.fadd(FReg::X0, FReg::X0, FReg::X7);
                    asm.fmul(FReg::X0, FReg::X0, inv);
                    asm.fmul(FReg::X0, FReg::X0, FReg::X13);
                    asm.fcvt_w_s(xi, FReg::X0);
                    emit_clamp(&mut asm, xi, Reg::X22, Reg::X5, Reg::X6);
                }
                asm.sll(Reg::X5, Reg::X25, Reg::X12);
                asm.add(Reg::X5, Reg::X5, Reg::X24);
                asm.slli(Reg::X5, Reg::X5, 2);
                asm.add(Reg::X5, Reg::X5, Reg::X11);
                asm.lw(Reg::X26, Reg::X5, 0);
            }
            FilterKind::Point => {
                // SW point sampling of an equal-size RGBA8 texture reduces
                // to address arithmetic + copy (§6.4: "the point-sampling
                // software code to turn into a simple copy operation").
                asm.sll(Reg::X5, Reg::X21, Reg::X12);
                asm.add(Reg::X5, Reg::X5, Reg::X20);
                asm.slli(Reg::X5, Reg::X5, 2);
                asm.add(Reg::X5, Reg::X5, Reg::X11);
                asm.lw(Reg::X26, Reg::X5, 0);
            }
            FilterKind::Bilinear => {
                let s = sw_scale(bench.log_size, 0, target);
                emit_sw_bilinear(&mut asm, "b0", Reg::X11, 0, Reg::X26, s);
            }
            FilterKind::Trilinear => {
                let s0 = sw_scale(bench.log_size, 0, target);
                emit_sw_bilinear(&mut asm, "t0", Reg::X11, 0, Reg::X26, s0);
                // The level-1 sample must not clobber the level-0 result:
                // park it in f1 (the FP file doubles as spare storage).
                asm.fmv_w_x(FReg::X1, Reg::X26);
                let s1 = sw_scale(bench.log_size, 1, target);
                emit_sw_bilinear(&mut asm, "t1", Reg::X17, 1, Reg::X26, s1);
                asm.fmv_x_w(Reg::X27, FReg::X1);
                emit_color_lerp(
                    &mut asm,
                    Reg::X27,
                    Reg::X26,
                    Reg::X16,
                    Reg::X29,
                    Reg::X5,
                    Reg::X6,
                    Reg::X7,
                );
                asm.mv(Reg::X26, Reg::X29);
            }
        }
    }

    // dst[i] = color.
    asm.slli(Reg::X5, R_IDX, 2);
    asm.add(Reg::X5, Reg::X5, Reg::X13);
    asm.sw(Reg::X26, Reg::X5, 0);
    util::emit_loop_tail(&mut asm, Reg::X19, "tx").expect("fresh tag");
    asm.ret();
    asm.assemble(abi::CODE_BASE).expect("texture kernel assembles")
}

/// Host replica of the SW fixed-point bilinear path (bit-exact with the
/// kernel's arithmetic; `scale` comes from the same [`sw_scale`] the
/// emitter embeds).
fn host_sw_bilinear(
    tex: &[u8],
    mip_off: usize,
    log_size: u32,
    level: u32,
    x: u32,
    y: u32,
    scale: (f32, f32),
) -> u32 {
    let w = 1i32 << (log_size - level);
    let fp = |p: u32, s: f32| ((p as f32 + 0.5) * s) as i32 - 128;
    let (x_fp, y_fp) = (fp(x, scale.0), fp(y, scale.1));
    let (x0, fu) = (x_fp >> 8, (x_fp & 255) as u32);
    let (y0, fv) = (y_fp >> 8, (y_fp & 255) as u32);
    let clamp = |v: i32| v.clamp(0, w - 1) as usize;
    let texel = |tx: usize, ty: usize| -> u32 {
        let idx = mip_off + (ty * w as usize + tx) * 4;
        u32::from_le_bytes([tex[idx], tex[idx + 1], tex[idx + 2], tex[idx + 3]])
    };
    let lerp = |a: u32, b: u32, f: u32| -> u32 {
        let mut out = 0u32;
        for shift in [0, 8, 16, 24] {
            let ca = (a >> shift) & 255;
            let cb = (b >> shift) & 255;
            let c = (ca as i32 + (((cb as i32 - ca as i32) * f as i32) >> 8)) as u32 & 255;
            out |= c << shift;
        }
        out
    };
    let (x0c, x1c) = (clamp(x0), clamp(x0 + 1));
    let (y0c, y1c) = (clamp(y0), clamp(y0 + 1));
    let top = lerp(texel(x0c, y0c), texel(x1c, y0c), fu);
    let bottom = lerp(texel(x0c, y1c), texel(x1c, y1c), fu);
    lerp(top, bottom, fv)
}

impl Benchmark for TexBench {
    fn name(&self) -> &'static str {
        match (self.filter, self.hw) {
            (FilterKind::Point, true) => "tex-point-hw",
            (FilterKind::Point, false) => "tex-point-sw",
            (FilterKind::Bilinear, true) => "tex-bilinear-hw",
            (FilterKind::Bilinear, false) => "tex-bilinear-sw",
            (FilterKind::Trilinear, true) => "tex-trilinear-hw",
            (FilterKind::Trilinear, false) => "tex-trilinear-sw",
        }
    }

    fn class(&self) -> BenchClass {
        BenchClass::Texture
    }

    fn run_on(&self, config: &GpuConfig) -> BenchResult {
        let size = self.size();
        let (tw, th) = self.target_dims();
        let pixels = tw as usize * th as usize;
        let tex_bytes = build_texture_with_mips(self.log_size);
        let mut dev = Device::new(config.clone());
        let buf_tex = dev.alloc(tex_bytes.len() as u32).expect("alloc tex");
        let buf_dst = dev.alloc((pixels * 4) as u32).expect("alloc dst");
        dev.upload(buf_tex, &tex_bytes).expect("upload tex");

        // Trilinear samples between levels 0 and 1 (frac 0.5).
        let (lod, frac8) = match self.filter {
            FilterKind::Trilinear => (0.0f32, 128u32),
            _ => (0.0, 0),
        };
        let mip1_off = (size * size) as u32 * 4;

        let mut args = ArgWriter::new();
        args.word(buf_tex.addr)
            .word(self.log_size)
            .word(buf_dst.addr)
            .word(match self.filter {
                FilterKind::Point => 0,
                FilterKind::Bilinear => 1,
                FilterKind::Trilinear => 2,
            })
            .float(lod)
            .word(frac8)
            .word(buf_tex.addr + mip1_off);
        if self.target.is_some() {
            args.word(tw).word(th);
        }
        dev.write_args(&args);

        let prog = program(self);
        dev.load_program(&prog);
        let report = dev.run_kernel(prog.entry).expect("texture kernel finishes");

        // Validate every pixel against the host-side oracle.
        let got = dev.download_words(buf_dst).expect("download in range");
        let state = TexState {
            addr: 0,
            mipoff: 1,
            log_width: self.log_size,
            log_height: self.log_size,
            format: TexFormat::Rgba8,
            ..TexState::default()
        };
        let mut host_ram = vortex_mem::Ram::new();
        host_ram.write_bytes(0, &tex_bytes);
        let inv_w = 1.0 / tw as f32;
        let inv_h = 1.0 / th as f32;
        let mut ok = true;
        for (i, &got_px) in got.iter().enumerate() {
            let (x, y) = ((i % tw as usize) as u32, (i / tw as usize) as u32);
            let u = (x as f32 + 0.5) * inv_w;
            let v = (y as f32 + 0.5) * inv_h;
            let expect = if self.hw {
                match self.filter {
                    FilterKind::Point => {
                        vortex_tex::sample_point(&host_ram, &state, u, v, 0).to_u32()
                    }
                    FilterKind::Bilinear => {
                        vortex_tex::sample_bilinear(&host_ram, &state, u, v, 0).to_u32()
                    }
                    FilterKind::Trilinear => {
                        let a = vortex_tex::sample_bilinear(&host_ram, &state, u, v, 0);
                        let b = vortex_tex::sample_bilinear(&host_ram, &state, u, v, 1);
                        a.lerp(b, frac8 as u8).to_u32()
                    }
                }
            } else {
                match self.filter {
                    FilterKind::Point => {
                        // Target mode maps through normalized coords with
                        // the kernel's exact f32 order; the square default
                        // is the historical equal-size copy.
                        let (xi, yi) = if self.target.is_some() {
                            let xi = (((x as f32 + 0.5) * inv_w) * size as f32) as i32;
                            let yi = (((y as f32 + 0.5) * inv_h) * size as f32) as i32;
                            (
                                xi.clamp(0, size as i32 - 1) as usize,
                                yi.clamp(0, size as i32 - 1) as usize,
                            )
                        } else {
                            (x as usize, y as usize)
                        };
                        let idx = (yi * size + xi) * 4;
                        u32::from_le_bytes([
                            tex_bytes[idx],
                            tex_bytes[idx + 1],
                            tex_bytes[idx + 2],
                            tex_bytes[idx + 3],
                        ])
                    }
                    FilterKind::Bilinear => {
                        let s = sw_scale(self.log_size, 0, self.target);
                        host_sw_bilinear(&tex_bytes, 0, self.log_size, 0, x, y, s)
                    }
                    FilterKind::Trilinear => {
                        let s0 = sw_scale(self.log_size, 0, self.target);
                        let s1 = sw_scale(self.log_size, 1, self.target);
                        let a = host_sw_bilinear(&tex_bytes, 0, self.log_size, 0, x, y, s0);
                        let b = host_sw_bilinear(
                            &tex_bytes,
                            mip1_off as usize,
                            self.log_size,
                            1,
                            x,
                            y,
                            s1,
                        );
                        let mut out = 0u32;
                        for shift in [0, 8, 16, 24] {
                            let ca = (a >> shift) & 255;
                            let cb = (b >> shift) & 255;
                            let c = (ca as i32 + (((cb as i32 - ca as i32) * frac8 as i32) >> 8))
                                as u32
                                & 255;
                            out |= c << shift;
                        }
                        out
                    }
                }
            };
            if got_px != expect {
                ok = false;
                break;
            }
        }

        BenchResult {

            series: dev.time_series().cloned(),
            profile: dev.profile(),
            name: self.name().into(),
            stats: report.stats,
            validated: ok,
            work: pixels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(filter: FilterKind, hw: bool) {
        let r = TexBench::new(filter, hw, 4).run_on(&GpuConfig::with_cores(1));
        assert!(r.validated, "{} failed validation", r.name);
    }

    #[test]
    fn point_hw_matches_oracle() {
        check(FilterKind::Point, true);
    }

    #[test]
    fn point_sw_matches_oracle() {
        check(FilterKind::Point, false);
    }

    #[test]
    fn bilinear_hw_matches_oracle() {
        check(FilterKind::Bilinear, true);
    }

    #[test]
    fn bilinear_sw_matches_oracle() {
        check(FilterKind::Bilinear, false);
    }

    #[test]
    fn trilinear_hw_matches_oracle() {
        check(FilterKind::Trilinear, true);
    }

    #[test]
    fn trilinear_sw_matches_oracle() {
        check(FilterKind::Trilinear, false);
    }

    #[test]
    fn non_square_target_validates_all_filters() {
        // A 24×10 target (neither square nor power-of-two) sampling a
        // 16×16 texture — the shape of the true-1080p Figure 20 runs.
        for filter in [FilterKind::Point, FilterKind::Bilinear, FilterKind::Trilinear] {
            for hw in [true, false] {
                let b = TexBench::new(filter, hw, 4).with_target(24, 10);
                let r = b.run_on(&GpuConfig::with_cores(1));
                assert!(r.validated, "{} 24x10 failed validation", r.name);
                assert_eq!(r.work, 240);
            }
        }
    }

    #[test]
    fn square_target_option_matches_default_codegen() {
        // The pinned vxbench texture gate depends on the default path's
        // instruction stream staying exactly as it was: `target: None`
        // must emit byte-identical code whatever the option could do.
        let base = TexBench::new(FilterKind::Bilinear, true, 5);
        let prog = program(&base);
        let again = program(&TexBench { target: None, ..base });
        assert_eq!(prog.image, again.image);
    }

    #[test]
    fn mip_chain_has_expected_size() {
        // 8x8 RGBA8: 64 + 16 + 4 + 1 texels.
        let bytes = build_texture_with_mips(3);
        assert_eq!(bytes.len(), (64 + 16 + 4 + 1) * 4);
    }

    #[test]
    fn hw_texture_unit_sees_traffic() {
        let r = TexBench::new(FilterKind::Bilinear, true, 3).run_on(&GpuConfig::with_cores(1));
        assert!(r.stats.cores[0].tex_ops > 0);
        assert!(r.stats.cores[0].tex.texels_fetched > 0);
    }
}
