//! # vortex-par
//!
//! Order-preserving scoped-thread parallel map — the one concurrency
//! primitive the repository's embarrassingly-parallel host work shares.
//!
//! Two layers use it:
//!
//! * **Experiment sweeps** (`vortex-bench`, which re-exports this crate
//!   as `vortex_bench::par`): the same simulator run repeated across a
//!   grid of configurations. The runs are fully independent — each
//!   builds its own `vortex_core::Gpu` — so they parallelize trivially.
//! * **The host-reference rasterizer** (`vortex-gfx`): screen tiles are
//!   independent by construction (every pixel belongs to exactly one
//!   tile, and draw-order blending semantics are per-pixel), so a frame
//!   fans out one work item per tile.
//!
//! Built on `std::thread::scope` with an atomic work index — no external
//! dependencies, no unsafe.
//!
//! Determinism: [`par_map`] returns results in *input order* no matter
//! how many workers ran or how the OS scheduled them. When `f` itself is
//! deterministic, a caller therefore produces byte-identical output at
//! any `--jobs`/`VORTEX_JOBS` setting — asserted by the integration
//! tests (sweep stdout) and the rasterizer's serial-vs-parallel
//! framebuffer identity tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker-thread count: `VORTEX_JOBS` when set (clamped to ≥ 1),
/// otherwise the host's available parallelism.
pub fn jobs() -> usize {
    match std::env::var("VORTEX_JOBS") {
        Ok(v) => v.parse::<usize>().unwrap_or(1).max(1),
        Err(_) => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    }
}

/// Maps `f` over `items` on [`jobs`] worker threads, returning results in
/// input order. `f` receives `(index, &item)`.
///
/// # Panics
/// A panic inside `f` (e.g. a benchmark validation failure) propagates to
/// the caller once the scope joins — a parallel sweep fails as loudly as a
/// sequential one.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_with_jobs(jobs(), items, f)
}

/// [`par_map`] with an explicit worker count (exposed so tests can compare
/// 1-worker and N-worker runs of the same sweep).
///
/// # Panics
/// Propagates panics from `f`, and panics if an internal lock is poisoned
/// (only possible when `f` panicked first).
pub fn par_map_with_jobs<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| {
                // Workers claim indices from a shared counter (dynamic
                // load balancing: a slow 32-core simulation does not hold
                // hostage a worker that could run three small ones), and
                // buffer results locally to keep the lock out of the
                // compute path.
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, f(i, &items[i])));
                }
                done.lock().expect("no poisoned result lock").append(&mut local);
            });
        }
    });
    let mut tagged = done.into_inner().expect("no poisoned result lock");
    tagged.sort_unstable_by_key(|&(i, _)| i);
    assert_eq!(tagged.len(), items.len(), "every work item produces a result");
    tagged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = par_map_with_jobs(7, &items, |i, &x| {
            assert_eq!(i, x);
            // Stagger completion so out-of-order finishes actually happen.
            if x % 3 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn one_worker_matches_many_workers() {
        let items: Vec<u64> = (0..40).collect();
        let seq = par_map_with_jobs(1, &items, |_, &x| x.wrapping_mul(2654435761));
        let par = par_map_with_jobs(4, &items, |_, &x| x.wrapping_mul(2654435761));
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_singleton_work_lists() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_with_jobs(4, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map_with_jobs(4, &[9u32], |_, &x| x + 1), vec![10]);
    }

    #[test]
    // `thread::scope` re-raises worker panics under its own message; what
    // matters is that a failing sweep item fails the whole sweep.
    #[should_panic(expected = "scoped thread panicked")]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..8).collect();
        let _ = par_map_with_jobs(3, &items, |_, &x| {
            assert!(x < 4, "sweep item failed");
            x
        });
    }
}
