//! Property test: `parse_asm(program.disassemble())` reproduces the exact
//! binary image — the disassembler and text assembler are inverses over
//! the whole instruction set the text syntax covers.

use proptest::prelude::*;
use vortex_asm::{parse_asm, Assembler};
use vortex_isa::{FReg, Reg};

/// Builds a random straight-line program via the builder API (only
/// text-representable operations, no raw data words).
fn any_program() -> impl Strategy<Value = Vec<u8>> {
    // Each element picks one emitter by index with random register fields.
    let step = (0u8..30, 0u32..32, 0u32..32, 0u32..32, -512i32..512);
    prop::collection::vec(step, 1..40).prop_map(|steps| {
        let mut a = Assembler::new();
        for (op, r1, r2, r3, imm) in steps {
            let (rd, rs1, rs2) = (
                Reg::from_index(r1),
                Reg::from_index(r2),
                Reg::from_index(r3),
            );
            let (fd, fs1, fs2) = (
                FReg::from_index(r1),
                FReg::from_index(r2),
                FReg::from_index(r3),
            );
            match op {
                0 => {
                    a.add(rd, rs1, rs2);
                }
                1 => {
                    a.sub(rd, rs1, rs2);
                }
                2 => {
                    a.xor(rd, rs1, rs2);
                }
                3 => {
                    a.mul(rd, rs1, rs2);
                }
                4 => {
                    a.divu(rd, rs1, rs2);
                }
                5 => {
                    a.addi(rd, rs1, imm);
                }
                6 => {
                    a.andi(rd, rs1, imm);
                }
                7 => {
                    a.slli(rd, rs1, (imm & 31).abs());
                }
                8 => {
                    a.lw(rd, rs1, imm);
                }
                9 => {
                    a.sw(rs2, rs1, imm);
                }
                10 => {
                    a.lbu(rd, rs1, imm);
                }
                11 => {
                    a.sh(rs2, rs1, imm);
                }
                12 => {
                    a.lui(rd, imm << 12);
                }
                13 => {
                    a.auipc(rd, imm << 12);
                }
                14 => {
                    a.jalr(rd, rs1, imm);
                }
                15 => {
                    a.flw(fd, rs1, imm);
                }
                16 => {
                    a.fsw(fs2, rs1, imm);
                }
                17 => {
                    a.fadd(fd, fs1, fs2);
                }
                18 => {
                    a.fmul(fd, fs1, fs2);
                }
                19 => {
                    a.fsqrt(fd, fs1);
                }
                20 => {
                    a.fmadd(fd, fs1, fs2, FReg::from_index(r1));
                }
                21 => {
                    a.feq(rd, fs1, fs2);
                }
                22 => {
                    a.fcvt_s_w(fd, rs1);
                }
                23 => {
                    a.fmv_x_w(rd, fs1);
                }
                24 => {
                    a.tmc(rs1);
                }
                25 => {
                    a.wspawn(rs1, rs2);
                }
                26 => {
                    a.split(rs1);
                }
                27 => {
                    a.join();
                }
                28 => {
                    a.bar(rs1, rs2);
                }
                _ => {
                    a.tex((r1 & 3) as u8, rd, rs1, rs2, Reg::from_index(r3));
                }
            }
        }
        a.ecall();
        a.assemble(0x8000_0000).expect("assembles").to_bytes()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn disassemble_then_parse_is_identity(image_bytes in any_program()) {
        // Rebuild the Program to disassemble it.
        let image: Vec<u32> = image_bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        let program = vortex_asm::Program {
            base: 0x8000_0000,
            entry: 0x8000_0000,
            image: image.clone(),
            symbols: Default::default(),
        };
        let text = program.disassemble();
        // Strip the "  0x........: " address prefixes the disassembler adds.
        let source: String = text
            .lines()
            .map(|l| match l.find(": ") {
                Some(pos) if l.trim_start().starts_with("0x") => &l[pos + 2..],
                _ => l,
            })
            .collect::<Vec<_>>()
            .join("\n");
        let reparsed = parse_asm(&source, 0x8000_0000)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n---\n{source}"));
        prop_assert_eq!(reparsed.image, image);
    }
}
