//! Text assembler: GNU-as-like syntax → [`Assembler`] items.
//!
//! Supported syntax:
//!
//! ```text
//! # comment       ; comment      // comment
//! label:
//!     li   a0, 100
//!     la   a1, table
//! loop:
//!     lw   t0, 0(a1)
//!     addi a1, a1, 4
//!     addi a0, a0, -1
//!     bnez a0, loop
//!     tex.0 a2, a3, a4, a5
//!     ecall
//! table:
//!     .word 1
//!     .float 0.5
//! ```

use crate::builder::Assembler;
use crate::error::AsmError;
use crate::program::Program;
use vortex_isa::{FReg, Reg};

fn syntax(line: usize, msg: impl Into<String>) -> AsmError {
    AsmError::Syntax {
        line,
        msg: msg.into(),
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    tok.parse::<Reg>()
        .map_err(|_| syntax(line, format!("expected integer register, got `{tok}`")))
}

fn parse_freg(tok: &str, line: usize) -> Result<FReg, AsmError> {
    tok.parse::<FReg>()
        .map_err(|_| syntax(line, format!("expected FP register, got `{tok}`")))
}

fn parse_imm(tok: &str, line: usize) -> Result<i32, AsmError> {
    let (neg, body) = match tok.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, tok),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16).map(|v| v as i64)
    } else {
        body.parse::<u32>().map(|v| v as i64)
    }
    .map_err(|_| syntax(line, format!("bad immediate `{tok}`")))?;
    let v = if neg { -v } else { v };
    i32::try_from(v).map_err(|_| syntax(line, format!("immediate `{tok}` out of range")))
}

/// Splits `off(reg)` into `(offset, reg)`.
fn parse_mem(tok: &str, line: usize) -> Result<(i32, Reg), AsmError> {
    let open = tok
        .find('(')
        .ok_or_else(|| syntax(line, format!("expected `offset(reg)`, got `{tok}`")))?;
    if !tok.ends_with(')') {
        return Err(syntax(line, format!("expected `offset(reg)`, got `{tok}`")));
    }
    let off_str = &tok[..open];
    let reg_str = &tok[open + 1..tok.len() - 1];
    let offset = if off_str.is_empty() {
        0
    } else {
        parse_imm(off_str, line)?
    };
    Ok((offset, parse_reg(reg_str, line)?))
}

/// Parses assembly text and assembles it at `base`.
///
/// # Errors
/// Returns [`AsmError::Syntax`] with a line number for malformed input, or
/// any of the label/range errors from [`Assembler::assemble`].
pub fn parse_asm(source: &str, base: u32) -> Result<Program, AsmError> {
    let mut a = Assembler::new();
    for (lineno, raw_line) in source.lines().enumerate() {
        let line = lineno + 1;
        // Strip comments.
        let mut text = raw_line;
        for marker in ["#", "//", ";"] {
            if let Some(pos) = text.find(marker) {
                text = &text[..pos];
            }
        }
        let mut text = text.trim();
        // Leading labels (possibly several on the same line).
        while let Some(colon) = text.find(':') {
            let (label, rest) = text.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                break;
            }
            a.label(label)?;
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        let (mnemonic, rest) = match text.find(char::is_whitespace) {
            Some(pos) => (&text[..pos], text[pos..].trim()),
            None => (text, ""),
        };
        let ops: Vec<&str> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',').map(str::trim).collect()
        };
        let argc = |n: usize| -> Result<(), AsmError> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(syntax(
                    line,
                    format!("`{mnemonic}` expects {n} operands, got {}", ops.len()),
                ))
            }
        };

        macro_rules! rrr {
            ($m:ident) => {{
                argc(3)?;
                let rd = parse_reg(ops[0], line)?;
                let rs1 = parse_reg(ops[1], line)?;
                let rs2 = parse_reg(ops[2], line)?;
                a.$m(rd, rs1, rs2);
            }};
        }
        macro_rules! rri {
            ($m:ident) => {{
                argc(3)?;
                let rd = parse_reg(ops[0], line)?;
                let rs1 = parse_reg(ops[1], line)?;
                let imm = parse_imm(ops[2], line)?;
                a.$m(rd, rs1, imm);
            }};
        }
        macro_rules! load {
            ($m:ident) => {{
                argc(2)?;
                let rd = parse_reg(ops[0], line)?;
                let (off, base_reg) = parse_mem(ops[1], line)?;
                a.$m(rd, base_reg, off);
            }};
        }
        macro_rules! store {
            ($m:ident) => {{
                argc(2)?;
                let rs2 = parse_reg(ops[0], line)?;
                let (off, base_reg) = parse_mem(ops[1], line)?;
                a.$m(rs2, base_reg, off);
            }};
        }
        macro_rules! br {
            ($cond:expr) => {{
                argc(3)?;
                let rs1 = parse_reg(ops[0], line)?;
                let rs2 = parse_reg(ops[1], line)?;
                // Target may be a label or a numeric byte offset (the
                // disassembler prints offsets, so this keeps
                // parse(disassemble(p)) == p).
                if let Ok(offset) = parse_imm(ops[2], line) {
                    a.raw(vortex_isa::Instr::Branch {
                        cond: $cond,
                        rs1,
                        rs2,
                        offset,
                    });
                } else {
                    a.branch_to($cond, rs1, rs2, ops[2]);
                }
            }};
        }
        macro_rules! brz {
            ($m:ident) => {{
                argc(2)?;
                let rs1 = parse_reg(ops[0], line)?;
                a.$m(rs1, ops[1]);
            }};
        }
        macro_rules! fff {
            ($m:ident) => {{
                argc(3)?;
                let rd = parse_freg(ops[0], line)?;
                let rs1 = parse_freg(ops[1], line)?;
                let rs2 = parse_freg(ops[2], line)?;
                a.$m(rd, rs1, rs2);
            }};
        }

        match mnemonic {
            "add" => rrr!(add),
            "sub" => rrr!(sub),
            "sll" => rrr!(sll),
            "slt" => rrr!(slt),
            "sltu" => rrr!(sltu),
            "xor" => rrr!(xor),
            "srl" => rrr!(srl),
            "sra" => rrr!(sra),
            "or" => rrr!(or),
            "and" => rrr!(and),
            "mul" => rrr!(mul),
            "mulh" => rrr!(mulh),
            "mulhsu" => rrr!(mulhsu),
            "mulhu" => rrr!(mulhu),
            "div" => rrr!(div),
            "divu" => rrr!(divu),
            "rem" => rrr!(rem),
            "remu" => rrr!(remu),
            "addi" => rri!(addi),
            "slti" => rri!(slti),
            "sltiu" => rri!(sltiu),
            "xori" => rri!(xori),
            "ori" => rri!(ori),
            "andi" => rri!(andi),
            "slli" => rri!(slli),
            "srli" => rri!(srli),
            "srai" => rri!(srai),
            "lb" => load!(lb),
            "lh" => load!(lh),
            "lw" => load!(lw),
            "lbu" => load!(lbu),
            "lhu" => load!(lhu),
            "sb" => store!(sb),
            "sh" => store!(sh),
            "sw" => store!(sw),
            "beq" => br!(vortex_isa::BranchCond::Eq),
            "bne" => br!(vortex_isa::BranchCond::Ne),
            "blt" => br!(vortex_isa::BranchCond::Lt),
            "bge" => br!(vortex_isa::BranchCond::Ge),
            "bltu" => br!(vortex_isa::BranchCond::Ltu),
            "bgeu" => br!(vortex_isa::BranchCond::Geu),
            "beqz" => brz!(beqz),
            "bnez" => brz!(bnez),
            "blez" => brz!(blez),
            "bgtz" => brz!(bgtz),
            "lui" => {
                argc(2)?;
                let rd = parse_reg(ops[0], line)?;
                let imm = parse_imm(ops[1], line)?;
                a.lui(rd, imm << 12);
            }
            "auipc" => {
                argc(2)?;
                let rd = parse_reg(ops[0], line)?;
                let imm = parse_imm(ops[1], line)?;
                a.auipc(rd, imm << 12);
            }
            "jal" => match ops.len() {
                1 => {
                    a.jal(Reg::X1, ops[0]);
                }
                2 => {
                    let rd = parse_reg(ops[0], line)?;
                    if let Ok(offset) = parse_imm(ops[1], line) {
                        a.raw(vortex_isa::Instr::Jal { rd, offset });
                    } else {
                        a.jal(rd, ops[1]);
                    }
                }
                _ => return Err(syntax(line, "`jal` expects 1 or 2 operands")),
            },
            "jalr" => {
                argc(2)?;
                let rd = parse_reg(ops[0], line)?;
                let (off, base_reg) = parse_mem(ops[1], line)?;
                a.jalr(rd, base_reg, off);
            }
            "j" => {
                argc(1)?;
                a.j(ops[0]);
            }
            "jr" => {
                argc(1)?;
                a.jr(parse_reg(ops[0], line)?);
            }
            "call" => {
                argc(1)?;
                a.call(ops[0]);
            }
            "ret" => {
                argc(0)?;
                a.ret();
            }
            "li" => {
                argc(2)?;
                let rd = parse_reg(ops[0], line)?;
                a.li(rd, parse_imm(ops[1], line)?);
            }
            "la" => {
                argc(2)?;
                let rd = parse_reg(ops[0], line)?;
                a.la(rd, ops[1]);
            }
            "mv" => {
                argc(2)?;
                let rd = parse_reg(ops[0], line)?;
                a.mv(rd, parse_reg(ops[1], line)?);
            }
            "not" => {
                argc(2)?;
                let rd = parse_reg(ops[0], line)?;
                a.not(rd, parse_reg(ops[1], line)?);
            }
            "neg" => {
                argc(2)?;
                let rd = parse_reg(ops[0], line)?;
                a.neg(rd, parse_reg(ops[1], line)?);
            }
            "seqz" => {
                argc(2)?;
                let rd = parse_reg(ops[0], line)?;
                a.seqz(rd, parse_reg(ops[1], line)?);
            }
            "snez" => {
                argc(2)?;
                let rd = parse_reg(ops[0], line)?;
                a.snez(rd, parse_reg(ops[1], line)?);
            }
            "nop" => {
                argc(0)?;
                a.nop();
            }
            "fence" => {
                argc(0)?;
                a.fence();
            }
            "ecall" => {
                argc(0)?;
                a.ecall();
            }
            "ebreak" => {
                argc(0)?;
                a.ebreak();
            }
            "csrr" => {
                argc(2)?;
                let rd = parse_reg(ops[0], line)?;
                a.csrr(rd, parse_imm(ops[1], line)? as u16);
            }
            "csrw" => {
                argc(2)?;
                let csr = parse_imm(ops[0], line)? as u16;
                a.csrw(csr, parse_reg(ops[1], line)?);
            }
            "csrrw" | "csrrs" | "csrrc" => {
                argc(3)?;
                let rd = parse_reg(ops[0], line)?;
                let csr = parse_imm(ops[1], line)? as u16;
                let rs1 = parse_reg(ops[2], line)?;
                match mnemonic {
                    "csrrw" => a.csrrw(rd, csr, rs1),
                    "csrrs" => a.csrrs(rd, csr, rs1),
                    _ => a.csrrc(rd, csr, rs1),
                };
            }
            "flw" => {
                argc(2)?;
                let rd = parse_freg(ops[0], line)?;
                let (off, base_reg) = parse_mem(ops[1], line)?;
                a.flw(rd, base_reg, off);
            }
            "fsw" => {
                argc(2)?;
                let rs2 = parse_freg(ops[0], line)?;
                let (off, base_reg) = parse_mem(ops[1], line)?;
                a.fsw(rs2, base_reg, off);
            }
            "fadd.s" => fff!(fadd),
            "fsub.s" => fff!(fsub),
            "fmul.s" => fff!(fmul),
            "fdiv.s" => fff!(fdiv),
            "fmin.s" => fff!(fmin),
            "fmax.s" => fff!(fmax),
            "fsgnj.s" => fff!(fsgnj),
            "fsqrt.s" => {
                argc(2)?;
                let rd = parse_freg(ops[0], line)?;
                a.fsqrt(rd, parse_freg(ops[1], line)?);
            }
            "fmv.s" => {
                argc(2)?;
                let rd = parse_freg(ops[0], line)?;
                a.fmv(rd, parse_freg(ops[1], line)?);
            }
            "fneg.s" => {
                argc(2)?;
                let rd = parse_freg(ops[0], line)?;
                a.fneg(rd, parse_freg(ops[1], line)?);
            }
            "fabs.s" => {
                argc(2)?;
                let rd = parse_freg(ops[0], line)?;
                a.fabs(rd, parse_freg(ops[1], line)?);
            }
            "fmadd.s" | "fmsub.s" => {
                argc(4)?;
                let rd = parse_freg(ops[0], line)?;
                let rs1 = parse_freg(ops[1], line)?;
                let rs2 = parse_freg(ops[2], line)?;
                let rs3 = parse_freg(ops[3], line)?;
                if mnemonic == "fmadd.s" {
                    a.fmadd(rd, rs1, rs2, rs3);
                } else {
                    a.fmsub(rd, rs1, rs2, rs3);
                }
            }
            "feq.s" | "flt.s" | "fle.s" => {
                argc(3)?;
                let rd = parse_reg(ops[0], line)?;
                let rs1 = parse_freg(ops[1], line)?;
                let rs2 = parse_freg(ops[2], line)?;
                match mnemonic {
                    "feq.s" => a.feq(rd, rs1, rs2),
                    "flt.s" => a.flt(rd, rs1, rs2),
                    _ => a.fle(rd, rs1, rs2),
                };
            }
            "fcvt.w.s" => {
                argc(2)?;
                let rd = parse_reg(ops[0], line)?;
                a.fcvt_w_s(rd, parse_freg(ops[1], line)?);
            }
            "fcvt.s.w" => {
                argc(2)?;
                let rd = parse_freg(ops[0], line)?;
                a.fcvt_s_w(rd, parse_reg(ops[1], line)?);
            }
            "fcvt.s.wu" => {
                argc(2)?;
                let rd = parse_freg(ops[0], line)?;
                a.fcvt_s_wu(rd, parse_reg(ops[1], line)?);
            }
            "fmv.x.w" => {
                argc(2)?;
                let rd = parse_reg(ops[0], line)?;
                a.fmv_x_w(rd, parse_freg(ops[1], line)?);
            }
            "fmv.w.x" => {
                argc(2)?;
                let rd = parse_freg(ops[0], line)?;
                a.fmv_w_x(rd, parse_reg(ops[1], line)?);
            }
            // Vortex extension.
            "tmc" => {
                argc(1)?;
                a.tmc(parse_reg(ops[0], line)?);
            }
            "wspawn" => {
                argc(2)?;
                let rs1 = parse_reg(ops[0], line)?;
                a.wspawn(rs1, parse_reg(ops[1], line)?);
            }
            "split" => {
                argc(1)?;
                a.split(parse_reg(ops[0], line)?);
            }
            "join" => {
                argc(0)?;
                a.join();
            }
            "bar" => {
                argc(2)?;
                let rs1 = parse_reg(ops[0], line)?;
                a.bar(rs1, parse_reg(ops[1], line)?);
            }
            m if m == "tex" || m.starts_with("tex.") => {
                argc(4)?;
                let stage: u8 = match m.strip_prefix("tex.") {
                    Some(s) => s
                        .parse()
                        .map_err(|_| syntax(line, format!("bad texture stage in `{m}`")))?,
                    None => 0,
                };
                let rd = parse_reg(ops[0], line)?;
                let u = parse_reg(ops[1], line)?;
                let v = parse_reg(ops[2], line)?;
                let lod = parse_reg(ops[3], line)?;
                a.tex(stage, rd, u, v, lod);
            }
            ".word" => {
                argc(1)?;
                // `.word` accepts the full unsigned range as well as negative
                // values, so it gets its own parse.
                let tok = ops[0];
                let v = if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X"))
                {
                    u32::from_str_radix(hex, 16)
                        .map_err(|_| syntax(line, format!("bad word `{tok}`")))?
                } else {
                    parse_imm(tok, line)? as u32
                };
                a.word(v);
            }
            ".float" => {
                argc(1)?;
                let v: f32 = ops[0]
                    .parse()
                    .map_err(|_| syntax(line, format!("bad float `{}`", ops[0])))?;
                a.float(v);
            }
            "fsgnjn.s" | "fsgnjx.s" => {
                argc(3)?;
                let rd = parse_freg(ops[0], line)?;
                let rs1 = parse_freg(ops[1], line)?;
                let rs2 = parse_freg(ops[2], line)?;
                let op = if mnemonic == "fsgnjn.s" {
                    vortex_isa::FpOpKind::SgnJn
                } else {
                    vortex_isa::FpOpKind::SgnJx
                };
                a.raw(vortex_isa::Instr::FpOp {
                    op,
                    rd,
                    rs1,
                    rs2,
                    rm: vortex_isa::RoundMode::Rne,
                });
            }
            "fnmsub.s" | "fnmadd.s" => {
                argc(4)?;
                let rd = parse_freg(ops[0], line)?;
                let rs1 = parse_freg(ops[1], line)?;
                let rs2 = parse_freg(ops[2], line)?;
                let rs3 = parse_freg(ops[3], line)?;
                let kind = if mnemonic == "fnmsub.s" {
                    vortex_isa::FmaKind::Nmsub
                } else {
                    vortex_isa::FmaKind::Nmadd
                };
                a.raw(vortex_isa::Instr::Fma {
                    kind,
                    rd,
                    rs1,
                    rs2,
                    rs3,
                    rm: vortex_isa::RoundMode::Rne,
                });
            }
            "fclass.s" => {
                argc(2)?;
                let rd = parse_reg(ops[0], line)?;
                let rs1 = parse_freg(ops[1], line)?;
                a.raw(vortex_isa::Instr::FClass { rd, rs1 });
            }
            "fcvt.wu.s" => {
                argc(2)?;
                let rd = parse_reg(ops[0], line)?;
                let rs1 = parse_freg(ops[1], line)?;
                a.raw(vortex_isa::Instr::FpToInt {
                    signed: false,
                    rd,
                    rs1,
                    rm: vortex_isa::RoundMode::Rtz,
                });
            }
            "csrrwi" | "csrrsi" | "csrrci" => {
                argc(3)?;
                let rd = parse_reg(ops[0], line)?;
                let csr_addr = parse_imm(ops[1], line)? as u16;
                let imm = parse_imm(ops[2], line)?;
                if !(0..32).contains(&imm) {
                    return Err(syntax(line, "CSR immediate must be in 0..32"));
                }
                let kind = match mnemonic {
                    "csrrwi" => vortex_isa::CsrKind::ReadWrite,
                    "csrrsi" => vortex_isa::CsrKind::ReadSet,
                    _ => vortex_isa::CsrKind::ReadClear,
                };
                a.raw(vortex_isa::Instr::Csr {
                    kind,
                    rd,
                    csr: csr_addr,
                    src: vortex_isa::CsrSrc::Imm(imm as u8),
                });
            }
            ".text" | ".globl" | ".global" | ".align" | ".section" => { /* ignored */ }
            other => return Err(syntax(line, format!("unknown mnemonic `{other}`"))),
        }
    }
    a.assemble(base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vortex_isa::{decode, Instr};

    #[test]
    fn parses_a_small_loop() {
        let p = parse_asm(
            r#"
            # countdown loop
            li   a0, 3
        loop:
            addi a0, a0, -1
            bnez a0, loop
            ecall
            "#,
            0x8000_0000,
        )
        .unwrap();
        assert_eq!(p.image.len(), 4);
        assert_eq!(p.addr_of("loop"), 0x8000_0004);
        assert!(matches!(decode(p.image[3]).unwrap(), Instr::Ecall));
    }

    #[test]
    fn parses_vortex_instructions() {
        let p = parse_asm(
            r#"
            tmc   t0
            wspawn t0, t1
            split t2
            join
            bar   t0, t1
            tex.1 a0, a1, a2, a3
            "#,
            0,
        )
        .unwrap();
        let instrs: Vec<Instr> = p.image.iter().map(|&w| decode(w).unwrap()).collect();
        assert!(instrs.iter().all(Instr::is_vortex_ext));
        assert!(matches!(instrs[5], Instr::Tex { stage: 1, .. }));
    }

    #[test]
    fn parses_memory_operands() {
        let p = parse_asm("lw t0, -8(sp)\nsw t0, (sp)", 0).unwrap();
        assert_eq!(
            decode(p.image[0]).unwrap(),
            Instr::Load {
                width: vortex_isa::LoadWidth::W,
                rd: Reg::X5,
                rs1: Reg::X2,
                offset: -8
            }
        );
    }

    #[test]
    fn parses_data_directives() {
        let p = parse_asm(".word 0xdeadbeef\n.float 1.0", 0).unwrap();
        assert_eq!(p.image, vec![0xDEAD_BEEF, 1.0f32.to_bits()]);
    }

    #[test]
    fn reports_line_numbers() {
        let err = parse_asm("nop\nbogus x0", 0).unwrap_err();
        assert!(matches!(err, AsmError::Syntax { line: 2, .. }), "{err}");
    }

    #[test]
    fn rejects_malformed_operands() {
        assert!(parse_asm("addi x1, x2", 0).is_err());
        assert!(parse_asm("lw x1, x2", 0).is_err());
        assert!(parse_asm("addi x1, x2, zz", 0).is_err());
    }
}
