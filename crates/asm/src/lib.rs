//! # vortex-asm
//!
//! Kernel authoring for the Vortex soft GPU. The paper's software stack
//! compiles OpenCL kernels through a modified POCL/LLVM backend (§5.4); this
//! reproduction replaces that toolchain with two lighter-weight paths that
//! emit the same binary interface:
//!
//! * [`Assembler`] — a programmatic builder with labels, forward references
//!   and the usual pseudo-instructions (`li`, `la`, `j`, `call`, `mv`, ...).
//!   All benchmark kernels in `vortex-kernels` are written against it.
//! * [`parse_asm`] — a small text assembler accepting GNU-as-like syntax for
//!   the supported instruction set, including the six Vortex instructions.
//!
//! Programs assemble to a [`Program`]: a load image (code + data words) with
//! an entry point, consumed by the `vortex-runtime` loader.
//!
//! ```
//! use vortex_asm::Assembler;
//! use vortex_isa::Reg;
//!
//! # fn main() -> Result<(), vortex_asm::AsmError> {
//! let mut a = Assembler::new();
//! a.li(Reg::X10, 10);
//! a.label("loop")?;
//! a.addi(Reg::X10, Reg::X10, -1);
//! a.bnez(Reg::X10, "loop");
//! a.ecall();
//! let prog = a.assemble(0x8000_0000)?;
//! assert_eq!(prog.entry, 0x8000_0000);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod error;
mod program;
mod text;

pub use builder::Assembler;
pub use error::AsmError;
pub use program::Program;
pub use text::parse_asm;
