//! Assembly error type.

use std::fmt;

/// Error produced while building or assembling a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never defined.
    UndefinedLabel(String),
    /// The same label was defined twice.
    DuplicateLabel(String),
    /// A branch target is out of the ±4 KiB range of the B-type encoding.
    BranchOutOfRange {
        /// The target label.
        label: String,
        /// The required byte offset.
        offset: i64,
    },
    /// A jump target is out of the ±1 MiB range of the J-type encoding.
    JumpOutOfRange {
        /// The target label.
        label: String,
        /// The required byte offset.
        offset: i64,
    },
    /// Text-assembler syntax error.
    Syntax {
        /// 1-based source line number.
        line: usize,
        /// Explanation.
        msg: String,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmError::BranchOutOfRange { label, offset } => {
                write!(f, "branch to `{label}` out of range (offset {offset})")
            }
            AsmError::JumpOutOfRange { label, offset } => {
                write!(f, "jump to `{label}` out of range (offset {offset})")
            }
            AsmError::Syntax { line, msg } => write!(f, "syntax error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for AsmError {}
