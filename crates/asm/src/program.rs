//! Assembled program image.

use std::collections::HashMap;

/// An assembled Vortex program: a flat little-endian word image plus the
/// entry PC and the resolved label table (useful for host-side patching and
/// for `wspawn` targets).
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Load address of `image[0]`.
    pub base: u32,
    /// Entry PC (== `base` unless an explicit entry label was set).
    pub entry: u32,
    /// Code and data words, in load order.
    pub image: Vec<u32>,
    /// Label name → absolute address.
    pub symbols: HashMap<String, u32>,
}

impl Program {
    /// Absolute address of `label`.
    ///
    /// # Panics
    /// Panics if the label does not exist; use [`Program::symbols`] for a
    /// fallible lookup.
    pub fn addr_of(&self, label: &str) -> u32 {
        *self
            .symbols
            .get(label)
            .unwrap_or_else(|| panic!("no such label `{label}`"))
    }

    /// Size of the image in bytes.
    pub fn size_bytes(&self) -> u32 {
        (self.image.len() * 4) as u32
    }

    /// Serializes the image to little-endian bytes (the device-memory load
    /// format used by the runtime's DMA model).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.image.iter().flat_map(|w| w.to_le_bytes()).collect()
    }

    /// Disassembles the image, one instruction (or `.word`) per line —
    /// the paper's elastic-pipeline tags carry PCs, so readable addresses
    /// matter for tracing.
    pub fn disassemble(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let addr_to_label: HashMap<u32, &str> = self
            .symbols
            .iter()
            .map(|(name, &addr)| (addr, name.as_str()))
            .collect();
        for (i, &word) in self.image.iter().enumerate() {
            let addr = self.base + (i as u32) * 4;
            if let Some(label) = addr_to_label.get(&addr) {
                let _ = writeln!(out, "{label}:");
            }
            match vortex_isa::decode(word) {
                Ok(instr) => {
                    let _ = writeln!(out, "  {addr:#010x}: {instr}");
                }
                Err(_) => {
                    let _ = writeln!(out, "  {addr:#010x}: .word {word:#010x}");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_bytes_is_little_endian() {
        let p = Program {
            base: 0,
            entry: 0,
            image: vec![0x1122_3344],
            symbols: HashMap::new(),
        };
        assert_eq!(p.to_bytes(), vec![0x44, 0x33, 0x22, 0x11]);
        assert_eq!(p.size_bytes(), 4);
    }
}
