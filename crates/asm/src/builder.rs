//! The programmatic assembler.

use crate::error::AsmError;
use crate::program::Program;
use std::collections::HashMap;
use vortex_isa::{
    encode, BranchCond, CsrKind, CsrSrc, FReg, FmaKind, FpCmpKind, FpOpKind, Instr, LoadWidth,
    OpImmKind, OpKind, Reg, RoundMode, StoreWidth,
};

#[derive(Debug, Clone)]
enum Item {
    /// A fully resolved instruction.
    Fixed(Instr),
    /// A conditional branch to a label (1 word).
    Branch {
        cond: BranchCond,
        rs1: Reg,
        rs2: Reg,
        target: String,
    },
    /// `jal rd, label` (1 word).
    Jump { rd: Reg, target: String },
    /// `la rd, label` → `auipc` + `addi` (2 words).
    La { rd: Reg, target: String },
    /// A raw data word.
    Word(u32),
}

impl Item {
    fn words(&self) -> u32 {
        match self {
            Item::La { .. } => 2,
            _ => 1,
        }
    }
}

/// Incremental program builder with labels and forward references.
///
/// Every RV32IMF and Vortex instruction has a same-named method; common
/// pseudo-instructions (`li`, `la`, `mv`, `j`, `call`, `ret`, `nop`,
/// `beqz`/`bnez`, ...) are provided on top. Terminal method:
/// [`Assembler::assemble`].
#[derive(Debug, Default)]
pub struct Assembler {
    items: Vec<Item>,
    labels: HashMap<String, usize>, // label → item index
    entry: Option<String>,
}

impl Assembler {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of words emitted so far.
    pub fn len_words(&self) -> u32 {
        self.items.iter().map(Item::words).sum()
    }

    /// Defines `name` at the current position.
    ///
    /// # Errors
    /// Returns [`AsmError::DuplicateLabel`] if the label already exists.
    pub fn label(&mut self, name: &str) -> Result<&mut Self, AsmError> {
        if self
            .labels
            .insert(name.to_string(), self.items.len())
            .is_some()
        {
            return Err(AsmError::DuplicateLabel(name.to_string()));
        }
        Ok(self)
    }

    /// Marks `name` as the program entry point (defaults to the image base).
    pub fn entry(&mut self, name: &str) -> &mut Self {
        self.entry = Some(name.to_string());
        self
    }

    /// Emits a pre-decoded instruction.
    pub fn raw(&mut self, instr: Instr) -> &mut Self {
        self.items.push(Item::Fixed(instr));
        self
    }

    /// Emits a raw data word (`.word`).
    pub fn word(&mut self, value: u32) -> &mut Self {
        self.items.push(Item::Word(value));
        self
    }

    /// Emits an IEEE-754 float constant (`.float`).
    pub fn float(&mut self, value: f32) -> &mut Self {
        self.word(value.to_bits())
    }

    // --- RV32I ------------------------------------------------------------

    /// `lui rd, imm20` (`imm` is the upper-immediate *value*, low 12 bits 0).
    pub fn lui(&mut self, rd: Reg, imm: i32) -> &mut Self {
        self.raw(Instr::Lui { rd, imm })
    }

    /// `auipc rd, imm20`.
    pub fn auipc(&mut self, rd: Reg, imm: i32) -> &mut Self {
        self.raw(Instr::Auipc { rd, imm })
    }

    /// `jal rd, label`.
    pub fn jal(&mut self, rd: Reg, target: &str) -> &mut Self {
        self.items.push(Item::Jump {
            rd,
            target: target.to_string(),
        });
        self
    }

    /// `jalr rd, offset(rs1)`.
    pub fn jalr(&mut self, rd: Reg, rs1: Reg, offset: i32) -> &mut Self {
        self.raw(Instr::Jalr { rd, rs1, offset })
    }

    fn branch(&mut self, cond: BranchCond, rs1: Reg, rs2: Reg, target: &str) -> &mut Self {
        self.items.push(Item::Branch {
            cond,
            rs1,
            rs2,
            target: target.to_string(),
        });
        self
    }

    /// Conditional branch to a label with an explicit condition (the
    /// generic form behind `beq`/`bne`/...).
    pub fn branch_to(&mut self, cond: BranchCond, rs1: Reg, rs2: Reg, target: &str) -> &mut Self {
        self.branch(cond, rs1, rs2, target)
    }

    /// `beq rs1, rs2, label`.
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, target: &str) -> &mut Self {
        self.branch(BranchCond::Eq, rs1, rs2, target)
    }
    /// `bne rs1, rs2, label`.
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, target: &str) -> &mut Self {
        self.branch(BranchCond::Ne, rs1, rs2, target)
    }
    /// `blt rs1, rs2, label`.
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, target: &str) -> &mut Self {
        self.branch(BranchCond::Lt, rs1, rs2, target)
    }
    /// `bge rs1, rs2, label`.
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, target: &str) -> &mut Self {
        self.branch(BranchCond::Ge, rs1, rs2, target)
    }
    /// `bltu rs1, rs2, label`.
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, target: &str) -> &mut Self {
        self.branch(BranchCond::Ltu, rs1, rs2, target)
    }
    /// `bgeu rs1, rs2, label`.
    pub fn bgeu(&mut self, rs1: Reg, rs2: Reg, target: &str) -> &mut Self {
        self.branch(BranchCond::Geu, rs1, rs2, target)
    }

    fn load(&mut self, width: LoadWidth, rd: Reg, rs1: Reg, offset: i32) -> &mut Self {
        self.raw(Instr::Load {
            width,
            rd,
            rs1,
            offset,
        })
    }

    /// `lb rd, offset(rs1)`.
    pub fn lb(&mut self, rd: Reg, rs1: Reg, offset: i32) -> &mut Self {
        self.load(LoadWidth::B, rd, rs1, offset)
    }
    /// `lh rd, offset(rs1)`.
    pub fn lh(&mut self, rd: Reg, rs1: Reg, offset: i32) -> &mut Self {
        self.load(LoadWidth::H, rd, rs1, offset)
    }
    /// `lw rd, offset(rs1)`.
    pub fn lw(&mut self, rd: Reg, rs1: Reg, offset: i32) -> &mut Self {
        self.load(LoadWidth::W, rd, rs1, offset)
    }
    /// `lbu rd, offset(rs1)`.
    pub fn lbu(&mut self, rd: Reg, rs1: Reg, offset: i32) -> &mut Self {
        self.load(LoadWidth::Bu, rd, rs1, offset)
    }
    /// `lhu rd, offset(rs1)`.
    pub fn lhu(&mut self, rd: Reg, rs1: Reg, offset: i32) -> &mut Self {
        self.load(LoadWidth::Hu, rd, rs1, offset)
    }

    fn store(&mut self, width: StoreWidth, rs2: Reg, rs1: Reg, offset: i32) -> &mut Self {
        self.raw(Instr::Store {
            width,
            rs1,
            rs2,
            offset,
        })
    }

    /// `sb rs2, offset(rs1)`.
    pub fn sb(&mut self, rs2: Reg, rs1: Reg, offset: i32) -> &mut Self {
        self.store(StoreWidth::B, rs2, rs1, offset)
    }
    /// `sh rs2, offset(rs1)`.
    pub fn sh(&mut self, rs2: Reg, rs1: Reg, offset: i32) -> &mut Self {
        self.store(StoreWidth::H, rs2, rs1, offset)
    }
    /// `sw rs2, offset(rs1)`.
    pub fn sw(&mut self, rs2: Reg, rs1: Reg, offset: i32) -> &mut Self {
        self.store(StoreWidth::W, rs2, rs1, offset)
    }

    fn op_imm(&mut self, op: OpImmKind, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.raw(Instr::OpImm { op, rd, rs1, imm })
    }

    /// `addi rd, rs1, imm`.
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.op_imm(OpImmKind::Addi, rd, rs1, imm)
    }
    /// `slti rd, rs1, imm`.
    pub fn slti(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.op_imm(OpImmKind::Slti, rd, rs1, imm)
    }
    /// `sltiu rd, rs1, imm`.
    pub fn sltiu(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.op_imm(OpImmKind::Sltiu, rd, rs1, imm)
    }
    /// `xori rd, rs1, imm`.
    pub fn xori(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.op_imm(OpImmKind::Xori, rd, rs1, imm)
    }
    /// `ori rd, rs1, imm`.
    pub fn ori(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.op_imm(OpImmKind::Ori, rd, rs1, imm)
    }
    /// `andi rd, rs1, imm`.
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.op_imm(OpImmKind::Andi, rd, rs1, imm)
    }
    /// `slli rd, rs1, shamt`.
    pub fn slli(&mut self, rd: Reg, rs1: Reg, shamt: i32) -> &mut Self {
        self.op_imm(OpImmKind::Slli, rd, rs1, shamt)
    }
    /// `srli rd, rs1, shamt`.
    pub fn srli(&mut self, rd: Reg, rs1: Reg, shamt: i32) -> &mut Self {
        self.op_imm(OpImmKind::Srli, rd, rs1, shamt)
    }
    /// `srai rd, rs1, shamt`.
    pub fn srai(&mut self, rd: Reg, rs1: Reg, shamt: i32) -> &mut Self {
        self.op_imm(OpImmKind::Srai, rd, rs1, shamt)
    }

    fn op(&mut self, op: OpKind, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.raw(Instr::Op { op, rd, rs1, rs2 })
    }

    /// `add rd, rs1, rs2`.
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(OpKind::Add, rd, rs1, rs2)
    }
    /// `sub rd, rs1, rs2`.
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(OpKind::Sub, rd, rs1, rs2)
    }
    /// `sll rd, rs1, rs2`.
    pub fn sll(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(OpKind::Sll, rd, rs1, rs2)
    }
    /// `slt rd, rs1, rs2`.
    pub fn slt(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(OpKind::Slt, rd, rs1, rs2)
    }
    /// `sltu rd, rs1, rs2`.
    pub fn sltu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(OpKind::Sltu, rd, rs1, rs2)
    }
    /// `xor rd, rs1, rs2`.
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(OpKind::Xor, rd, rs1, rs2)
    }
    /// `srl rd, rs1, rs2`.
    pub fn srl(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(OpKind::Srl, rd, rs1, rs2)
    }
    /// `sra rd, rs1, rs2`.
    pub fn sra(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(OpKind::Sra, rd, rs1, rs2)
    }
    /// `or rd, rs1, rs2`.
    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(OpKind::Or, rd, rs1, rs2)
    }
    /// `and rd, rs1, rs2`.
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(OpKind::And, rd, rs1, rs2)
    }
    /// `mul rd, rs1, rs2`.
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(OpKind::Mul, rd, rs1, rs2)
    }
    /// `mulh rd, rs1, rs2`.
    pub fn mulh(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(OpKind::Mulh, rd, rs1, rs2)
    }
    /// `mulhsu rd, rs1, rs2`.
    pub fn mulhsu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(OpKind::Mulhsu, rd, rs1, rs2)
    }
    /// `mulhu rd, rs1, rs2`.
    pub fn mulhu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(OpKind::Mulhu, rd, rs1, rs2)
    }
    /// `div rd, rs1, rs2`.
    pub fn div(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(OpKind::Div, rd, rs1, rs2)
    }
    /// `divu rd, rs1, rs2`.
    pub fn divu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(OpKind::Divu, rd, rs1, rs2)
    }
    /// `rem rd, rs1, rs2`.
    pub fn rem(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(OpKind::Rem, rd, rs1, rs2)
    }
    /// `remu rd, rs1, rs2`.
    pub fn remu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(OpKind::Remu, rd, rs1, rs2)
    }

    /// `fence` (flushes caches on Vortex).
    pub fn fence(&mut self) -> &mut Self {
        self.raw(Instr::Fence)
    }
    /// `ecall` (kernel exit / host trap).
    pub fn ecall(&mut self) -> &mut Self {
        self.raw(Instr::Ecall)
    }
    /// `ebreak`.
    pub fn ebreak(&mut self) -> &mut Self {
        self.raw(Instr::Ebreak)
    }

    /// `csrrw rd, csr, rs1`.
    pub fn csrrw(&mut self, rd: Reg, csr: u16, rs1: Reg) -> &mut Self {
        self.raw(Instr::Csr {
            kind: CsrKind::ReadWrite,
            rd,
            csr,
            src: CsrSrc::Reg(rs1),
        })
    }
    /// `csrrs rd, csr, rs1` (`csrr rd, csr` when `rs1 == x0`).
    pub fn csrrs(&mut self, rd: Reg, csr: u16, rs1: Reg) -> &mut Self {
        self.raw(Instr::Csr {
            kind: CsrKind::ReadSet,
            rd,
            csr,
            src: CsrSrc::Reg(rs1),
        })
    }
    /// `csrrc rd, csr, rs1`.
    pub fn csrrc(&mut self, rd: Reg, csr: u16, rs1: Reg) -> &mut Self {
        self.raw(Instr::Csr {
            kind: CsrKind::ReadClear,
            rd,
            csr,
            src: CsrSrc::Reg(rs1),
        })
    }
    /// `csrr rd, csr` — pseudo for `csrrs rd, csr, x0`.
    pub fn csrr(&mut self, rd: Reg, csr: u16) -> &mut Self {
        self.csrrs(rd, csr, Reg::X0)
    }
    /// `csrw csr, rs1` — pseudo for `csrrw x0, csr, rs1`.
    pub fn csrw(&mut self, csr: u16, rs1: Reg) -> &mut Self {
        self.csrrw(Reg::X0, csr, rs1)
    }

    // --- RV32F --------------------------------------------------------------

    /// `flw rd, offset(rs1)`.
    pub fn flw(&mut self, rd: FReg, rs1: Reg, offset: i32) -> &mut Self {
        self.raw(Instr::Flw { rd, rs1, offset })
    }
    /// `fsw rs2, offset(rs1)`.
    pub fn fsw(&mut self, rs2: FReg, rs1: Reg, offset: i32) -> &mut Self {
        self.raw(Instr::Fsw { rs1, rs2, offset })
    }

    fn fp_op(&mut self, op: FpOpKind, rd: FReg, rs1: FReg, rs2: FReg) -> &mut Self {
        self.raw(Instr::FpOp {
            op,
            rd,
            rs1,
            rs2,
            rm: RoundMode::Rne,
        })
    }

    /// `fadd.s rd, rs1, rs2`.
    pub fn fadd(&mut self, rd: FReg, rs1: FReg, rs2: FReg) -> &mut Self {
        self.fp_op(FpOpKind::Add, rd, rs1, rs2)
    }
    /// `fsub.s rd, rs1, rs2`.
    pub fn fsub(&mut self, rd: FReg, rs1: FReg, rs2: FReg) -> &mut Self {
        self.fp_op(FpOpKind::Sub, rd, rs1, rs2)
    }
    /// `fmul.s rd, rs1, rs2`.
    pub fn fmul(&mut self, rd: FReg, rs1: FReg, rs2: FReg) -> &mut Self {
        self.fp_op(FpOpKind::Mul, rd, rs1, rs2)
    }
    /// `fdiv.s rd, rs1, rs2`.
    pub fn fdiv(&mut self, rd: FReg, rs1: FReg, rs2: FReg) -> &mut Self {
        self.fp_op(FpOpKind::Div, rd, rs1, rs2)
    }
    /// `fsqrt.s rd, rs1`.
    pub fn fsqrt(&mut self, rd: FReg, rs1: FReg) -> &mut Self {
        self.fp_op(FpOpKind::Sqrt, rd, rs1, FReg::X0)
    }
    /// `fmin.s rd, rs1, rs2`.
    pub fn fmin(&mut self, rd: FReg, rs1: FReg, rs2: FReg) -> &mut Self {
        self.fp_op(FpOpKind::Min, rd, rs1, rs2)
    }
    /// `fmax.s rd, rs1, rs2`.
    pub fn fmax(&mut self, rd: FReg, rs1: FReg, rs2: FReg) -> &mut Self {
        self.fp_op(FpOpKind::Max, rd, rs1, rs2)
    }
    /// `fsgnj.s rd, rs1, rs2` (`fmv.s` when `rs1 == rs2`).
    pub fn fsgnj(&mut self, rd: FReg, rs1: FReg, rs2: FReg) -> &mut Self {
        self.fp_op(FpOpKind::SgnJ, rd, rs1, rs2)
    }
    /// `fmv.s rd, rs1` — pseudo for `fsgnj.s rd, rs1, rs1`.
    pub fn fmv(&mut self, rd: FReg, rs1: FReg) -> &mut Self {
        self.fsgnj(rd, rs1, rs1)
    }
    /// `fneg.s rd, rs1` — pseudo for `fsgnjn.s rd, rs1, rs1`.
    pub fn fneg(&mut self, rd: FReg, rs1: FReg) -> &mut Self {
        self.fp_op(FpOpKind::SgnJn, rd, rs1, rs1)
    }
    /// `fabs.s rd, rs1` — pseudo for `fsgnjx.s rd, rs1, rs1`.
    pub fn fabs(&mut self, rd: FReg, rs1: FReg) -> &mut Self {
        self.fp_op(FpOpKind::SgnJx, rd, rs1, rs1)
    }
    /// `fmadd.s rd, rs1, rs2, rs3` — `rd = rs1*rs2 + rs3`.
    pub fn fmadd(&mut self, rd: FReg, rs1: FReg, rs2: FReg, rs3: FReg) -> &mut Self {
        self.raw(Instr::Fma {
            kind: FmaKind::Madd,
            rd,
            rs1,
            rs2,
            rs3,
            rm: RoundMode::Rne,
        })
    }
    /// `fmsub.s rd, rs1, rs2, rs3` — `rd = rs1*rs2 - rs3`.
    pub fn fmsub(&mut self, rd: FReg, rs1: FReg, rs2: FReg, rs3: FReg) -> &mut Self {
        self.raw(Instr::Fma {
            kind: FmaKind::Msub,
            rd,
            rs1,
            rs2,
            rs3,
            rm: RoundMode::Rne,
        })
    }
    /// `feq.s rd, rs1, rs2`.
    pub fn feq(&mut self, rd: Reg, rs1: FReg, rs2: FReg) -> &mut Self {
        self.raw(Instr::FpCmp {
            op: FpCmpKind::Eq,
            rd,
            rs1,
            rs2,
        })
    }
    /// `flt.s rd, rs1, rs2`.
    pub fn flt(&mut self, rd: Reg, rs1: FReg, rs2: FReg) -> &mut Self {
        self.raw(Instr::FpCmp {
            op: FpCmpKind::Lt,
            rd,
            rs1,
            rs2,
        })
    }
    /// `fle.s rd, rs1, rs2`.
    pub fn fle(&mut self, rd: Reg, rs1: FReg, rs2: FReg) -> &mut Self {
        self.raw(Instr::FpCmp {
            op: FpCmpKind::Le,
            rd,
            rs1,
            rs2,
        })
    }
    /// `fcvt.w.s rd, rs1` (round towards zero, the C-semantics default).
    pub fn fcvt_w_s(&mut self, rd: Reg, rs1: FReg) -> &mut Self {
        self.raw(Instr::FpToInt {
            signed: true,
            rd,
            rs1,
            rm: RoundMode::Rtz,
        })
    }
    /// `fcvt.s.w rd, rs1`.
    pub fn fcvt_s_w(&mut self, rd: FReg, rs1: Reg) -> &mut Self {
        self.raw(Instr::IntToFp {
            signed: true,
            rd,
            rs1,
            rm: RoundMode::Rne,
        })
    }
    /// `fcvt.s.wu rd, rs1`.
    pub fn fcvt_s_wu(&mut self, rd: FReg, rs1: Reg) -> &mut Self {
        self.raw(Instr::IntToFp {
            signed: false,
            rd,
            rs1,
            rm: RoundMode::Rne,
        })
    }
    /// `fmv.x.w rd, rs1`.
    pub fn fmv_x_w(&mut self, rd: Reg, rs1: FReg) -> &mut Self {
        self.raw(Instr::FmvToInt { rd, rs1 })
    }
    /// `fmv.w.x rd, rs1`.
    pub fn fmv_w_x(&mut self, rd: FReg, rs1: Reg) -> &mut Self {
        self.raw(Instr::FmvFromInt { rd, rs1 })
    }

    // --- Vortex SIMT extension ---------------------------------------------

    /// `tmc rs1` — thread-mask control.
    pub fn tmc(&mut self, rs1: Reg) -> &mut Self {
        self.raw(Instr::Tmc { rs1 })
    }
    /// `wspawn rs1, rs2` — activate wavefronts.
    pub fn wspawn(&mut self, rs1: Reg, rs2: Reg) -> &mut Self {
        self.raw(Instr::Wspawn { rs1, rs2 })
    }
    /// `split rs1` — divergence push.
    pub fn split(&mut self, rs1: Reg) -> &mut Self {
        self.raw(Instr::Split { rs1 })
    }
    /// `join` — reconvergence pop.
    pub fn join(&mut self) -> &mut Self {
        self.raw(Instr::Join)
    }
    /// `bar rs1, rs2` — wavefront barrier.
    pub fn bar(&mut self, rs1: Reg, rs2: Reg) -> &mut Self {
        self.raw(Instr::Bar { rs1, rs2 })
    }
    /// `tex rd, u, v, lod` on texture `stage`.
    pub fn tex(&mut self, stage: u8, rd: Reg, u: Reg, v: Reg, lod: Reg) -> &mut Self {
        self.raw(Instr::Tex {
            rd,
            u,
            v,
            lod,
            stage,
        })
    }

    // --- Pseudo-instructions -------------------------------------------------

    /// `nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.addi(Reg::X0, Reg::X0, 0)
    }
    /// `mv rd, rs1`.
    pub fn mv(&mut self, rd: Reg, rs1: Reg) -> &mut Self {
        self.addi(rd, rs1, 0)
    }
    /// `not rd, rs1`.
    pub fn not(&mut self, rd: Reg, rs1: Reg) -> &mut Self {
        self.xori(rd, rs1, -1)
    }
    /// `neg rd, rs1`.
    pub fn neg(&mut self, rd: Reg, rs1: Reg) -> &mut Self {
        self.sub(rd, Reg::X0, rs1)
    }
    /// `seqz rd, rs1`.
    pub fn seqz(&mut self, rd: Reg, rs1: Reg) -> &mut Self {
        self.sltiu(rd, rs1, 1)
    }
    /// `snez rd, rs1`.
    pub fn snez(&mut self, rd: Reg, rs1: Reg) -> &mut Self {
        self.sltu(rd, Reg::X0, rs1)
    }
    /// `beqz rs1, label`.
    pub fn beqz(&mut self, rs1: Reg, target: &str) -> &mut Self {
        self.beq(rs1, Reg::X0, target)
    }
    /// `bnez rs1, label`.
    pub fn bnez(&mut self, rs1: Reg, target: &str) -> &mut Self {
        self.bne(rs1, Reg::X0, target)
    }
    /// `blez rs1, label`.
    pub fn blez(&mut self, rs1: Reg, target: &str) -> &mut Self {
        self.bge(Reg::X0, rs1, target)
    }
    /// `bgtz rs1, label`.
    pub fn bgtz(&mut self, rs1: Reg, target: &str) -> &mut Self {
        self.blt(Reg::X0, rs1, target)
    }
    /// `j label`.
    pub fn j(&mut self, target: &str) -> &mut Self {
        self.jal(Reg::X0, target)
    }
    /// `call label` (single `jal ra, label`; ±1 MiB reach is ample here).
    pub fn call(&mut self, target: &str) -> &mut Self {
        self.jal(Reg::X1, target)
    }
    /// `ret`.
    pub fn ret(&mut self) -> &mut Self {
        self.jalr(Reg::X0, Reg::X1, 0)
    }
    /// `jr rs1`.
    pub fn jr(&mut self, rs1: Reg) -> &mut Self {
        self.jalr(Reg::X0, rs1, 0)
    }

    /// `li rd, imm` — loads any 32-bit constant (1 or 2 instructions).
    pub fn li(&mut self, rd: Reg, imm: i32) -> &mut Self {
        if (-2048..2048).contains(&imm) {
            return self.addi(rd, Reg::X0, imm);
        }
        // lui + addi with carry correction for a negative low part.
        let low = (imm << 20) >> 20;
        let high = imm.wrapping_sub(low) as u32;
        self.lui(rd, high as i32);
        if low != 0 {
            self.addi(rd, rd, low);
        }
        self
    }

    /// Loads an IEEE-754 constant into an FP register via `x5` as scratch.
    pub fn lfi(&mut self, rd: FReg, value: f32) -> &mut Self {
        self.li(Reg::X5, value.to_bits() as i32);
        self.fmv_w_x(rd, Reg::X5)
    }

    /// `la rd, label` — loads the absolute address of a label (2 words).
    pub fn la(&mut self, rd: Reg, target: &str) -> &mut Self {
        self.items.push(Item::La {
            rd,
            target: target.to_string(),
        });
        self
    }

    // --- Terminal -------------------------------------------------------------

    /// Resolves labels and produces the binary image loaded at `base`.
    ///
    /// # Errors
    /// Fails on undefined labels or out-of-range branch/jump targets.
    pub fn assemble(&self, base: u32) -> Result<Program, AsmError> {
        // Pass 1: absolute address of every item and label.
        let mut item_addr = Vec::with_capacity(self.items.len());
        let mut pc = base;
        for item in &self.items {
            item_addr.push(pc);
            pc += item.words() * 4;
        }
        let end_addr = pc;
        let resolve = |target: &str| -> Result<u32, AsmError> {
            let &idx = self
                .labels
                .get(target)
                .ok_or_else(|| AsmError::UndefinedLabel(target.to_string()))?;
            Ok(if idx == self.items.len() {
                end_addr
            } else {
                item_addr[idx]
            })
        };

        // Pass 2: emit.
        let mut image = Vec::with_capacity(self.items.len());
        for (i, item) in self.items.iter().enumerate() {
            let pc = item_addr[i];
            match item {
                Item::Fixed(instr) => image.push(encode(instr)),
                Item::Word(w) => image.push(*w),
                Item::Branch {
                    cond,
                    rs1,
                    rs2,
                    target,
                } => {
                    let dest = resolve(target)?;
                    let offset = dest as i64 - pc as i64;
                    if !(-4096..4096).contains(&offset) {
                        return Err(AsmError::BranchOutOfRange {
                            label: target.clone(),
                            offset,
                        });
                    }
                    image.push(encode(&Instr::Branch {
                        cond: *cond,
                        rs1: *rs1,
                        rs2: *rs2,
                        offset: offset as i32,
                    }));
                }
                Item::Jump { rd, target } => {
                    let dest = resolve(target)?;
                    let offset = dest as i64 - pc as i64;
                    if !(-(1 << 20)..(1 << 20)).contains(&offset) {
                        return Err(AsmError::JumpOutOfRange {
                            label: target.clone(),
                            offset,
                        });
                    }
                    image.push(encode(&Instr::Jal {
                        rd: *rd,
                        offset: offset as i32,
                    }));
                }
                Item::La { rd, target } => {
                    let dest = resolve(target)? as i64;
                    let rel = dest - pc as i64;
                    let low = ((rel as i32) << 20) >> 20;
                    let high = (rel as i32).wrapping_sub(low);
                    image.push(encode(&Instr::Auipc {
                        rd: *rd,
                        imm: high,
                    }));
                    image.push(encode(&Instr::OpImm {
                        op: OpImmKind::Addi,
                        rd: *rd,
                        rs1: *rd,
                        imm: low,
                    }));
                }
            }
        }

        let symbols: HashMap<String, u32> = self
            .labels
            .iter()
            .map(|(name, &idx)| {
                let addr = if idx == self.items.len() {
                    end_addr
                } else {
                    item_addr[idx]
                };
                (name.clone(), addr)
            })
            .collect();
        let entry = match &self.entry {
            Some(name) => *symbols
                .get(name)
                .ok_or_else(|| AsmError::UndefinedLabel(name.clone()))?,
            None => base,
        };
        Ok(Program {
            base,
            entry,
            image,
            symbols,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut a = Assembler::new();
        a.li(Reg::X10, 3);
        a.label("loop").unwrap();
        a.addi(Reg::X10, Reg::X10, -1);
        a.bnez(Reg::X10, "loop");
        a.beqz(Reg::X10, "done");
        a.nop();
        a.label("done").unwrap();
        a.ecall();
        let p = a.assemble(0x1000).unwrap();
        // bnez at 0x1008 targets 0x1004 → offset -4.
        let bnez = vortex_isa::decode(p.image[2]).unwrap();
        assert_eq!(
            bnez,
            Instr::Branch {
                cond: BranchCond::Ne,
                rs1: Reg::X10,
                rs2: Reg::X0,
                offset: -4
            }
        );
        assert_eq!(p.addr_of("done"), 0x1014);
    }

    #[test]
    fn li_covers_full_range() {
        for &v in &[0, 1, -1, 2047, -2048, 2048, -2049, 0x1234_5678, i32::MIN, i32::MAX] {
            let mut a = Assembler::new();
            a.li(Reg::X6, v);
            let p = a.assemble(0).unwrap();
            // Emulate the 1-2 instruction sequence.
            let mut x6 = 0i32;
            for w in &p.image {
                match vortex_isa::decode(*w).unwrap() {
                    Instr::Lui { imm, .. } => x6 = imm,
                    Instr::OpImm {
                        op: OpImmKind::Addi,
                        imm,
                        ..
                    } => x6 = x6.wrapping_add(imm),
                    other => panic!("unexpected {other:?}"),
                }
            }
            assert_eq!(x6, v, "li {v}");
        }
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut a = Assembler::new();
        a.j("nowhere");
        assert_eq!(
            a.assemble(0),
            Err(AsmError::UndefinedLabel("nowhere".into()))
        );
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let mut a = Assembler::new();
        a.label("x").unwrap();
        assert!(a.label("x").is_err());
    }

    #[test]
    fn branch_out_of_range_is_an_error() {
        let mut a = Assembler::new();
        a.label("start").unwrap();
        for _ in 0..2000 {
            a.nop();
        }
        a.beqz(Reg::X0, "start");
        assert!(matches!(
            a.assemble(0),
            Err(AsmError::BranchOutOfRange { .. })
        ));
    }

    #[test]
    fn la_emits_pc_relative_pair() {
        let mut a = Assembler::new();
        a.la(Reg::X10, "data");
        a.ecall();
        a.label("data").unwrap();
        a.word(42);
        let p = a.assemble(0x8000_0000).unwrap();
        assert_eq!(p.image.len(), 4);
        assert_eq!(p.addr_of("data"), 0x8000_000C);
    }

    #[test]
    fn entry_label_sets_entry_point() {
        let mut a = Assembler::new();
        a.word(0xDEAD_BEEF);
        a.entry("main");
        a.label("main").unwrap();
        a.ecall();
        let p = a.assemble(0x100).unwrap();
        assert_eq!(p.entry, 0x104);
    }

    #[test]
    fn end_label_points_past_the_image() {
        let mut a = Assembler::new();
        a.nop();
        a.label("end").unwrap();
        let p = a.assemble(0).unwrap();
        assert_eq!(p.addr_of("end"), 4);
    }
}
