//! Functional flat memory.
//!
//! Holds the *values* of device memory: program images, kernel arguments,
//! buffers, textures and frame buffers. Organized as sparse 4 KiB pages so a
//! full 4 GiB address space costs only what is touched.
//!
//! This sits on the simulator's hottest path — every instruction fetch and
//! every lane of every load/store lands here — so the word accessors
//! resolve their page once (not once per byte) and the page table is a
//! *flat directory*: a 32-bit address space is exactly 2²⁰ pages of 4 KiB,
//! so `addr >> 12` indexes straight into a million-entry vector with no
//! hashing at all. The directory itself costs 8 MiB of null pointers
//! (allocated zeroed, so the OS maps it lazily); pages are still only
//! materialized when written.

use std::fmt;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: usize = PAGE_SIZE - 1;
/// Pages covering the whole 32-bit address space.
const NUM_PAGES: usize = 1 << (32 - PAGE_SHIFT);

/// Sparse byte-addressable memory covering the full 32-bit address space.
#[derive(Clone)]
pub struct Ram {
    /// Flat page directory indexed by `addr >> PAGE_SHIFT`.
    pages: Vec<Option<Box<[u8; PAGE_SIZE]>>>,
}

impl Default for Ram {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Ram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ram")
            .field("resident_pages", &self.resident_pages())
            .finish()
    }
}

impl Ram {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> Self {
        Self {
            // All-`None` directory: `Option<Box<_>>`'s niche makes this an
            // `alloc_zeroed`, so the 8 MiB are mapped lazily by the OS.
            pages: vec![None; NUM_PAGES],
        }
    }

    fn page(&self, addr: u32) -> Option<&[u8; PAGE_SIZE]> {
        self.pages[(addr >> PAGE_SHIFT) as usize].as_deref()
    }

    fn page_mut(&mut self, addr: u32) -> &mut [u8; PAGE_SIZE] {
        self.pages[(addr >> PAGE_SHIFT) as usize]
            .get_or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    /// Reads one byte (unmapped memory reads as zero).
    pub fn read_u8(&self, addr: u32) -> u8 {
        match self.page(addr) {
            Some(p) => p[(addr as usize) & PAGE_MASK],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u32, value: u8) {
        let off = (addr as usize) & PAGE_MASK;
        self.page_mut(addr)[off] = value;
    }

    /// Reads a little-endian u16 (no alignment requirement).
    pub fn read_u16(&self, addr: u32) -> u16 {
        let off = (addr as usize) & PAGE_MASK;
        if off <= PAGE_SIZE - 2 {
            // Both bytes on one page: resolve it once.
            match self.page(addr) {
                Some(p) => u16::from_le_bytes([p[off], p[off + 1]]),
                None => 0,
            }
        } else {
            u16::from_le_bytes([self.read_u8(addr), self.read_u8(addr.wrapping_add(1))])
        }
    }

    /// Writes a little-endian u16.
    pub fn write_u16(&mut self, addr: u32, value: u16) {
        let off = (addr as usize) & PAGE_MASK;
        let bytes = value.to_le_bytes();
        if off <= PAGE_SIZE - 2 {
            self.page_mut(addr)[off..off + 2].copy_from_slice(&bytes);
        } else {
            self.write_u8(addr, bytes[0]);
            self.write_u8(addr.wrapping_add(1), bytes[1]);
        }
    }

    /// Reads a little-endian u32 (no alignment requirement).
    pub fn read_u32(&self, addr: u32) -> u32 {
        let off = (addr as usize) & PAGE_MASK;
        if off <= PAGE_SIZE - 4 {
            // Fast path (every aligned access): one page lookup, not four.
            match self.page(addr) {
                Some(p) => u32::from_le_bytes([p[off], p[off + 1], p[off + 2], p[off + 3]]),
                None => 0,
            }
        } else {
            u32::from_le_bytes([
                self.read_u8(addr),
                self.read_u8(addr.wrapping_add(1)),
                self.read_u8(addr.wrapping_add(2)),
                self.read_u8(addr.wrapping_add(3)),
            ])
        }
    }

    /// Writes a little-endian u32.
    pub fn write_u32(&mut self, addr: u32, value: u32) {
        let off = (addr as usize) & PAGE_MASK;
        let bytes = value.to_le_bytes();
        if off <= PAGE_SIZE - 4 {
            self.page_mut(addr)[off..off + 4].copy_from_slice(&bytes);
        } else {
            for (i, b) in bytes.into_iter().enumerate() {
                self.write_u8(addr.wrapping_add(i as u32), b);
            }
        }
    }

    /// Reads an IEEE-754 single.
    pub fn read_f32(&self, addr: u32) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Writes an IEEE-754 single.
    pub fn write_f32(&mut self, addr: u32, value: f32) {
        self.write_u32(addr, value.to_bits());
    }

    /// Bulk-copies `bytes` into memory starting at `addr` (the DMA path of
    /// the runtime's command processor). Copies page-sized chunks.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) {
        let mut addr = addr;
        let mut rest = bytes;
        while !rest.is_empty() {
            let off = (addr as usize) & PAGE_MASK;
            let chunk = (PAGE_SIZE - off).min(rest.len());
            self.page_mut(addr)[off..off + chunk].copy_from_slice(&rest[..chunk]);
            rest = &rest[chunk..];
            addr = addr.wrapping_add(chunk as u32);
        }
    }

    /// Bulk-reads `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u32, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        let mut addr = addr;
        let mut filled = 0;
        while filled < len {
            let off = (addr as usize) & PAGE_MASK;
            let chunk = (PAGE_SIZE - off).min(len - filled);
            if let Some(p) = self.page(addr) {
                out[filled..filled + chunk].copy_from_slice(&p[off..off + chunk]);
            }
            filled += chunk;
            addr = addr.wrapping_add(chunk as u32);
        }
        out
    }

    /// Number of resident 4 KiB pages (memory footprint diagnostics).
    pub fn resident_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count()
    }

    /// Appends the memory image as its resident page set: a count followed
    /// by `(page index, 4 KiB raw bytes)` pairs in ascending index order.
    pub fn save_state(&self, w: &mut vortex_snapshot::Writer) {
        w.usize(self.resident_pages());
        for (idx, page) in self.pages.iter().enumerate() {
            if let Some(page) = page {
                w.u32(idx as u32);
                w.raw(&page[..]);
            }
        }
    }

    /// Replaces the entire memory image with the snapshot's page set:
    /// every currently-resident page is dropped first, so pages the
    /// snapshot does not hold read as zero again.
    pub fn restore_state(
        &mut self,
        r: &mut vortex_snapshot::Reader<'_>,
    ) -> vortex_snapshot::SnapResult<()> {
        let n = r.len(4 + PAGE_SIZE)?;
        for page in self.pages.iter_mut() {
            *page = None;
        }
        for _ in 0..n {
            let idx = r.u32()? as usize;
            if idx >= NUM_PAGES {
                return Err(vortex_snapshot::SnapError::BadValue("page index"));
            }
            let bytes = r.raw(PAGE_SIZE)?;
            let mut page = Box::new([0u8; PAGE_SIZE]);
            page.copy_from_slice(bytes);
            self.pages[idx] = Some(page);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_reads_zero() {
        let ram = Ram::new();
        assert_eq!(ram.read_u32(0xDEAD_BEEF), 0);
        assert_eq!(ram.resident_pages(), 0);
    }

    #[test]
    fn read_your_write_all_widths() {
        let mut ram = Ram::new();
        ram.write_u8(10, 0xAB);
        assert_eq!(ram.read_u8(10), 0xAB);
        ram.write_u16(100, 0x1234);
        assert_eq!(ram.read_u16(100), 0x1234);
        ram.write_u32(200, 0xDEAD_BEEF);
        assert_eq!(ram.read_u32(200), 0xDEAD_BEEF);
        ram.write_f32(300, 1.5);
        assert_eq!(ram.read_f32(300), 1.5);
    }

    #[test]
    fn words_are_little_endian() {
        let mut ram = Ram::new();
        ram.write_u32(0, 0x0403_0201);
        assert_eq!(ram.read_u8(0), 1);
        assert_eq!(ram.read_u8(3), 4);
    }

    #[test]
    fn cross_page_access_works() {
        let mut ram = Ram::new();
        let addr = PAGE_SIZE as u32 - 2;
        ram.write_u32(addr, 0xCAFE_BABE);
        assert_eq!(ram.read_u32(addr), 0xCAFE_BABE);
        assert_eq!(ram.resident_pages(), 2);
    }

    #[test]
    fn unaligned_word_straddles_pages_at_every_offset() {
        // Exercise both the fast single-page path and the boundary
        // fallback for u16/u32 at every offset near a page edge.
        for delta in 0..8u32 {
            let mut ram = Ram::new();
            let addr = (PAGE_SIZE as u32) * 3 - 4 + delta;
            ram.write_u32(addr, 0x1122_3344 ^ delta);
            assert_eq!(ram.read_u32(addr), 0x1122_3344 ^ delta, "u32 @ -4+{delta}");
            let mut ram = Ram::new();
            ram.write_u16(addr, (0xBEEF ^ delta) as u16);
            assert_eq!(ram.read_u16(addr), (0xBEEF ^ delta) as u16, "u16 @ -4+{delta}");
        }
    }

    #[test]
    fn bulk_round_trip() {
        let mut ram = Ram::new();
        let data: Vec<u8> = (0..=255).collect();
        ram.write_bytes(0x8000, &data);
        assert_eq!(ram.read_bytes(0x8000, 256), data);
    }

    #[test]
    fn bulk_round_trip_across_pages() {
        let mut ram = Ram::new();
        let data: Vec<u8> = (0..PAGE_SIZE * 2 + 100).map(|i| (i * 7) as u8).collect();
        let base = PAGE_SIZE as u32 - 50;
        ram.write_bytes(base, &data);
        assert_eq!(ram.read_bytes(base, data.len()), data);
        // A partially unmapped bulk read still returns zeros for the holes.
        assert_eq!(ram.read_bytes(0x7000_0000, 64), vec![0u8; 64]);
    }
}
