//! Functional flat memory.
//!
//! Holds the *values* of device memory: program images, kernel arguments,
//! buffers, textures and frame buffers. Organized as sparse 4 KiB pages so a
//! full 4 GiB address space costs only what is touched.

use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Sparse byte-addressable memory covering the full 32-bit address space.
#[derive(Debug, Default, Clone)]
pub struct Ram {
    pages: HashMap<u32, Box<[u8; PAGE_SIZE]>>,
}

impl Ram {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> Self {
        Self::default()
    }

    fn page(&self, addr: u32) -> Option<&[u8; PAGE_SIZE]> {
        self.pages.get(&(addr >> PAGE_SHIFT)).map(|p| &**p)
    }

    fn page_mut(&mut self, addr: u32) -> &mut [u8; PAGE_SIZE] {
        self.pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    /// Reads one byte (unmapped memory reads as zero).
    pub fn read_u8(&self, addr: u32) -> u8 {
        match self.page(addr) {
            Some(p) => p[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u32, value: u8) {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        self.page_mut(addr)[off] = value;
    }

    /// Reads a little-endian u16 (no alignment requirement).
    pub fn read_u16(&self, addr: u32) -> u16 {
        u16::from_le_bytes([self.read_u8(addr), self.read_u8(addr.wrapping_add(1))])
    }

    /// Writes a little-endian u16.
    pub fn write_u16(&mut self, addr: u32, value: u16) {
        let [b0, b1] = value.to_le_bytes();
        self.write_u8(addr, b0);
        self.write_u8(addr.wrapping_add(1), b1);
    }

    /// Reads a little-endian u32 (no alignment requirement).
    pub fn read_u32(&self, addr: u32) -> u32 {
        u32::from_le_bytes([
            self.read_u8(addr),
            self.read_u8(addr.wrapping_add(1)),
            self.read_u8(addr.wrapping_add(2)),
            self.read_u8(addr.wrapping_add(3)),
        ])
    }

    /// Writes a little-endian u32.
    pub fn write_u32(&mut self, addr: u32, value: u32) {
        for (i, b) in value.to_le_bytes().into_iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), b);
        }
    }

    /// Reads an IEEE-754 single.
    pub fn read_f32(&self, addr: u32) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Writes an IEEE-754 single.
    pub fn write_f32(&mut self, addr: u32, value: f32) {
        self.write_u32(addr, value.to_bits());
    }

    /// Bulk-copies `bytes` into memory starting at `addr` (the DMA path of
    /// the runtime's command processor).
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), b);
        }
    }

    /// Bulk-reads `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u32, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| self.read_u8(addr.wrapping_add(i as u32)))
            .collect()
    }

    /// Number of resident 4 KiB pages (memory footprint diagnostics).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_reads_zero() {
        let ram = Ram::new();
        assert_eq!(ram.read_u32(0xDEAD_BEEF), 0);
        assert_eq!(ram.resident_pages(), 0);
    }

    #[test]
    fn read_your_write_all_widths() {
        let mut ram = Ram::new();
        ram.write_u8(10, 0xAB);
        assert_eq!(ram.read_u8(10), 0xAB);
        ram.write_u16(100, 0x1234);
        assert_eq!(ram.read_u16(100), 0x1234);
        ram.write_u32(200, 0xDEAD_BEEF);
        assert_eq!(ram.read_u32(200), 0xDEAD_BEEF);
        ram.write_f32(300, 1.5);
        assert_eq!(ram.read_f32(300), 1.5);
    }

    #[test]
    fn words_are_little_endian() {
        let mut ram = Ram::new();
        ram.write_u32(0, 0x0403_0201);
        assert_eq!(ram.read_u8(0), 1);
        assert_eq!(ram.read_u8(3), 4);
    }

    #[test]
    fn cross_page_access_works() {
        let mut ram = Ram::new();
        let addr = PAGE_SIZE as u32 - 2;
        ram.write_u32(addr, 0xCAFE_BABE);
        assert_eq!(ram.read_u32(addr), 0xCAFE_BABE);
        assert_eq!(ram.resident_pages(), 2);
    }

    #[test]
    fn bulk_round_trip() {
        let mut ram = Ram::new();
        let data: Vec<u8> = (0..=255).collect();
        ram.write_bytes(0x8000, &data);
        assert_eq!(ram.read_bytes(0x8000, 256), data);
    }
}
