//! The multi-level memory hierarchy.
//!
//! Composes the levels of Figure 4: per-core L1 caches below an optional
//! shared L2 per cluster, an optional L3 shared by clusters, and the DRAM
//! at the bottom. [`MemHierarchy`] owns everything *above* the L1s: it
//! exposes one port per core on which the cores push their L1 miss traffic
//! and receive fills back.
//!
//! Tag management: every level re-tags requests with a fresh id and records
//! `(source port, original tag)` so responses route back even when two
//! cores fill the same line address concurrently.

use crate::cache::{Cache, CacheConfig, CacheOccupancy};
use crate::dram::{Dram, DramConfig};
use crate::req::{MemReq, MemRsp, Tag};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use vortex_faults::{site, FaultConfig};
use vortex_snapshot::{Reader, Snap, SnapResult, Writer};

/// Hierarchy shape above the L1s.
#[derive(Debug, Clone)]
pub struct HierarchyConfig {
    /// Number of core ports (one per core: I$ + D$ traffic share it).
    pub num_cores: usize,
    /// Cores per cluster (for L2 sharing); must divide `num_cores`.
    pub cores_per_cluster: usize,
    /// Optional shared L2 per cluster.
    pub l2: Option<CacheConfig>,
    /// Optional L3 shared by all clusters.
    pub l3: Option<CacheConfig>,
    /// DRAM parameters.
    pub dram: DramConfig,
}

impl HierarchyConfig {
    /// A hierarchy with no L2/L3: cores talk straight to DRAM.
    pub fn flat(num_cores: usize, dram: DramConfig) -> Self {
        Self {
            num_cores,
            cores_per_cluster: num_cores.max(1),
            l2: None,
            l3: None,
            dram,
        }
    }

    fn num_clusters(&self) -> usize {
        self.num_cores.div_ceil(self.cores_per_cluster)
    }
}

/// Default L2: 128 KiB, 8 banks, 64 B lines.
pub fn l2_default() -> CacheConfig {
    CacheConfig {
        size_bytes: 128 * 1024,
        line_bytes: 64,
        num_banks: 8,
        num_ways: 2,
        ports: 1,
        mshr_size: 32,
        input_queue: 4,
        memq_size: 16,
    }
}

/// Default L3: 512 KiB, 8 banks, 64 B lines.
pub fn l3_default() -> CacheConfig {
    CacheConfig {
        size_bytes: 512 * 1024,
        line_bytes: 64,
        num_banks: 8,
        num_ways: 4,
        ports: 1,
        mshr_size: 64,
        input_queue: 4,
        memq_size: 16,
    }
}

/// Remembers where a re-tagged request came from.
#[derive(Debug)]
struct TagMap {
    next: Tag,
    entries: HashMap<Tag, (usize, Tag)>,
}

impl TagMap {
    fn new() -> Self {
        Self {
            next: 0,
            entries: HashMap::new(),
        }
    }

    fn wrap(&mut self, port: usize, orig: Tag) -> Tag {
        let tag = self.next;
        self.next = self.next.wrapping_add(1);
        self.entries.insert(tag, (port, orig));
        tag
    }

    fn unwrap(&mut self, tag: Tag) -> Option<(usize, Tag)> {
        self.entries.remove(&tag)
    }

    fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    /// Serialized with entries sorted by wrapped tag so the byte image is
    /// deterministic despite the `HashMap`'s arbitrary iteration order.
    fn save_state(&self, w: &mut Writer) {
        w.u64(self.next);
        let mut entries: Vec<(Tag, (usize, Tag))> =
            self.entries.iter().map(|(k, v)| (*k, *v)).collect();
        entries.sort_unstable_by_key(|(k, _)| *k);
        w.usize(entries.len());
        for (tag, (port, orig)) in entries {
            w.u64(tag);
            w.usize(port);
            w.u64(orig);
        }
    }

    fn restore_state(&mut self, r: &mut Reader<'_>) -> SnapResult<()> {
        self.next = r.u64()?;
        let n = r.len(24)?;
        self.entries.clear();
        for _ in 0..n {
            let tag = r.u64()?;
            let port = r.usize()?;
            let orig = r.u64()?;
            self.entries.insert(tag, (port, orig));
        }
        Ok(())
    }
}

/// A cache level shared by several upstream ports.
#[derive(Debug)]
struct SharedLevel {
    cache: Cache,
    tags: TagMap,
    /// Requests admitted from upstream but not yet accepted by the bank
    /// selector (bounded by the selector's own backpressure).
    pending: Vec<MemReq>,
    /// Responses routed back per upstream port.
    rsp_out: Vec<VecDeque<MemRsp>>,
}

impl SharedLevel {
    fn new(config: CacheConfig, ports: usize) -> Self {
        Self {
            cache: Cache::new(config),
            tags: TagMap::new(),
            pending: Vec::new(),
            rsp_out: (0..ports).map(|_| VecDeque::new()).collect(),
        }
    }

    /// Admits an upstream request if the pending buffer has room.
    fn push_req(&mut self, port: usize, req: MemReq) -> Result<(), MemReq> {
        // Bounded staging keeps backpressure real: one slot per port.
        if self.pending.len() >= self.rsp_out.len() * 2 {
            return Err(req);
        }
        // Writes never produce responses, so don't record a routing entry
        // for them (it would never be reclaimed).
        let tag = if req.write {
            0
        } else {
            self.tags.wrap(port, req.tag)
        };
        self.pending.push(MemReq {
            tag,
            addr: req.addr,
            write: req.write,
        });
        Ok(())
    }

    fn begin_cycle(&mut self) {
        self.cache.begin_cycle();
    }

    fn tick(&mut self) {
        self.cache.offer(&mut self.pending);
        self.cache.tick();
        while let Some(rsp) = self.cache.pop_rsp() {
            if let Some((port, orig)) = self.tags.unwrap(rsp.tag) {
                self.rsp_out[port].push_back(MemRsp { tag: orig });
            }
        }
    }

    fn is_idle(&self) -> bool {
        self.pending.is_empty()
            && self.cache.is_idle()
            && self.rsp_out.iter().all(VecDeque::is_empty)
    }

    /// `true` when a tick would change no state and draw no fault
    /// decision: nothing staged for the selector, nothing routed back
    /// upstream, and the cache itself fast-forward idle (which also
    /// rules out an attached fault plan). MSHR entries parked on
    /// in-flight fills do not disqualify — the fill wakes the level.
    fn ff_idle(&self) -> bool {
        self.pending.is_empty()
            && self.cache.ff_idle()
            && self.rsp_out.iter().all(VecDeque::is_empty)
    }

    fn save_state(&self, w: &mut Writer) {
        self.cache.save_state(w);
        self.tags.save_state(w);
        self.pending.save(w);
        for q in &self.rsp_out {
            q.save(w);
        }
    }

    fn restore_state(&mut self, r: &mut Reader<'_>) -> SnapResult<()> {
        self.cache.restore_state(r)?;
        self.tags.restore_state(r)?;
        self.pending = Vec::load(r)?;
        for q in &mut self.rsp_out {
            *q = VecDeque::load(r)?;
        }
        Ok(())
    }
}

/// The memory system above the per-core L1 caches.
#[derive(Debug)]
pub struct MemHierarchy {
    config: HierarchyConfig,
    l2: Vec<SharedLevel>,
    l3: Option<SharedLevel>,
    dram: Dram,
    dram_tags: TagMap,
    /// Per-core response queues.
    core_rsp: Vec<VecDeque<MemRsp>>,
}

impl MemHierarchy {
    /// Builds the hierarchy.
    ///
    /// # Panics
    /// Panics if `cores_per_cluster` is zero.
    pub fn new(config: HierarchyConfig) -> Self {
        assert!(config.cores_per_cluster > 0, "cluster size must be non-zero");
        let clusters = config.num_clusters();
        let l2 = match &config.l2 {
            Some(cfg) => (0..clusters)
                .map(|_| SharedLevel::new(*cfg, config.cores_per_cluster))
                .collect(),
            None => Vec::new(),
        };
        let l3 = config
            .l3
            .as_ref()
            .map(|cfg| SharedLevel::new(*cfg, clusters.max(1)));
        Self {
            dram: Dram::new(config.dram),
            dram_tags: TagMap::new(),
            core_rsp: (0..config.num_cores).map(|_| VecDeque::new()).collect(),
            l2,
            l3,
            config,
        }
    }

    /// Pushes one L1 miss-traffic request from `core`. Fails on
    /// backpressure; the core retries next cycle.
    ///
    /// # Panics
    /// Panics if `core` is out of range.
    pub fn push_req(&mut self, core: usize, req: MemReq) -> Result<(), MemReq> {
        assert!(core < self.config.num_cores, "core id out of range");
        if self.l2.is_empty() {
            // Straight to DRAM (re-tagged for routing).
            if !self.dram.can_accept() {
                return Err(req);
            }
            let tag = if req.write {
                0
            } else {
                self.dram_tags.wrap(core, req.tag)
            };
            match self.dram.push_req(MemReq {
                tag,
                addr: req.addr,
                write: req.write,
            }) {
                Ok(()) => Ok(()),
                Err(r) => {
                    // The push can fail even after `can_accept` when a fault
                    // plan stalls the handshake: reclaim the routing tag or
                    // it leaks and the hierarchy never reads as idle again.
                    if !req.write {
                        self.dram_tags.unwrap(tag);
                    }
                    Err(MemReq {
                        tag: req.tag,
                        addr: r.addr,
                        write: r.write,
                    })
                }
            }
        } else {
            let cluster = core / self.config.cores_per_cluster;
            let port = core % self.config.cores_per_cluster;
            self.l2[cluster].push_req(port, req)
        }
    }

    /// Pops one fill response destined for `core`.
    pub fn pop_rsp(&mut self, core: usize) -> Option<MemRsp> {
        self.core_rsp[core].pop_front()
    }

    /// Advances every shared level and the DRAM by one cycle, moving
    /// traffic between levels.
    pub fn tick(&mut self) {
        for l2 in &mut self.l2 {
            l2.begin_cycle();
        }
        if let Some(l3) = &mut self.l3 {
            l3.begin_cycle();
        }

        for l2 in &mut self.l2 {
            l2.tick();
        }

        // L2 miss traffic → L3 (or DRAM).
        for (ci, l2) in self.l2.iter_mut().enumerate() {
            while let Some(req) = l2.cache.peek_mem_req().copied() {
                let ok = match &mut self.l3 {
                    Some(l3) => l3.push_req(ci, req).is_ok(),
                    None => {
                        if self.dram.can_accept() {
                            let tag = if req.write {
                                0
                            } else {
                                // Route back to cluster ci, L2 tag.
                                self.dram_tags.wrap(self.config.num_cores + ci, req.tag)
                            };
                            let pushed = self
                                .dram
                                .push_req(MemReq {
                                    tag,
                                    addr: req.addr,
                                    write: req.write,
                                })
                                .is_ok();
                            if !pushed && !req.write {
                                // Injected handshake stall: reclaim the tag.
                                self.dram_tags.unwrap(tag);
                            }
                            pushed
                        } else {
                            false
                        }
                    }
                };
                if ok {
                    l2.cache.pop_mem_req();
                } else {
                    break;
                }
            }
        }

        if let Some(l3) = &mut self.l3 {
            l3.tick();
            // L3 miss traffic → DRAM.
            while let Some(req) = l3.cache.peek_mem_req().copied() {
                if !self.dram.can_accept() {
                    break;
                }
                let tag = if req.write {
                    0
                } else {
                    self.dram_tags
                        .wrap(self.config.num_cores + self.l2.len(), req.tag)
                };
                if self
                    .dram
                    .push_req(MemReq {
                        tag,
                        addr: req.addr,
                        write: req.write,
                    })
                    .is_ok()
                {
                    l3.cache.pop_mem_req();
                } else {
                    // Injected handshake stall: reclaim the tag.
                    if !req.write {
                        self.dram_tags.unwrap(tag);
                    }
                    break;
                }
            }
        }

        self.dram.tick();

        // DRAM responses → owning level.
        while let Some(rsp) = self.dram.pop_rsp() {
            let Some((port, orig)) = self.dram_tags.unwrap(rsp.tag) else {
                continue;
            };
            if port < self.config.num_cores {
                self.core_rsp[port].push_back(MemRsp { tag: orig });
            } else {
                let idx = port - self.config.num_cores;
                if idx < self.l2.len() {
                    self.l2[idx].cache.push_mem_rsp(MemRsp { tag: orig });
                } else if let Some(l3) = &mut self.l3 {
                    l3.cache.push_mem_rsp(MemRsp { tag: orig });
                }
            }
        }

        // L3 responses → L2s.
        if let Some(l3) = &mut self.l3 {
            for (ci, l2) in self.l2.iter_mut().enumerate() {
                while let Some(rsp) = l3.rsp_out[ci].pop_front() {
                    l2.cache.push_mem_rsp(rsp);
                }
            }
        }

        // L2 responses → cores.
        for (ci, l2) in self.l2.iter_mut().enumerate() {
            for port in 0..self.config.cores_per_cluster {
                let core = ci * self.config.cores_per_cluster + port;
                if core >= self.config.num_cores {
                    break;
                }
                while let Some(rsp) = l2.rsp_out[port].pop_front() {
                    self.core_rsp[core].push_back(rsp);
                }
            }
        }
    }

    /// Flushes every shared cache level (part of the `fence` path).
    pub fn flush(&mut self) {
        for l2 in &mut self.l2 {
            l2.cache.flush();
        }
        if let Some(l3) = &mut self.l3 {
            l3.cache.flush();
        }
    }

    /// `true` when nothing is in flight anywhere above the L1s.
    pub fn is_idle(&self) -> bool {
        self.dram.is_idle()
            && self.dram_tags.is_empty()
            && self.l2.iter().all(SharedLevel::is_idle)
            && self.l3.as_ref().is_none_or(SharedLevel::is_idle)
            && self.core_rsp.iter().all(VecDeque::is_empty)
    }

    /// The earliest cycle whose [`MemHierarchy::tick`] could change
    /// state above the L1s. With work queued in any shared level (or a
    /// fault plan attached to one), fill responses waiting on core
    /// ports, or queued/fault work at the DRAM, that is `now`; with
    /// only DRAM accesses in flight it is the tick on which the oldest
    /// one retires; when everything above the L1s is drained,
    /// `u64::MAX` (outstanding routing tags alone hold no event — they
    /// wait on DRAM in-flight entries, which are accounted here).
    pub fn next_event_cycle(&self, now: u64) -> u64 {
        let levels_idle = self.l2.iter().all(SharedLevel::ff_idle)
            && self.l3.as_ref().is_none_or(SharedLevel::ff_idle)
            && self.core_rsp.iter().all(VecDeque::is_empty);
        if !levels_idle {
            return now;
        }
        self.dram.next_event_cycle()
    }

    /// The bulk equivalent of `delta` certified-idle ticks (see
    /// [`MemHierarchy::next_event_cycle`]): every queue above the L1s
    /// is empty, so the only per-tick effects are the shared levels'
    /// `begin_cycle` (a no-op on an idle selector) and the DRAM clock
    /// advancing.
    pub fn bulk_advance(&mut self, delta: u64) {
        for l2 in &mut self.l2 {
            l2.begin_cycle();
        }
        if let Some(l3) = &mut self.l3 {
            l3.begin_cycle();
        }
        self.dram.advance(delta);
    }

    /// Total DRAM reads serviced.
    pub fn dram_reads(&self) -> u64 {
        self.dram.total_reads
    }

    /// Total DRAM writes serviced.
    pub fn dram_writes(&self) -> u64 {
        self.dram.total_writes
    }

    /// Read responses dropped by fault injection.
    pub fn dram_dropped(&self) -> u64 {
        self.dram.dropped_rsps
    }

    /// L2 statistics per cluster (empty when no L2 is configured).
    pub fn l2_stats(&self) -> Vec<crate::cache::CacheStats> {
        self.l2.iter().map(|l| l.cache.stats).collect()
    }

    /// The configuration this hierarchy was built with.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Derives and attaches fault plans for the DRAM and every shared
    /// cache level. Each component gets its own decision stream, so runs
    /// are reproducible for a given seed regardless of topology.
    pub fn apply_faults(&mut self, faults: &FaultConfig) {
        if faults.is_noop() {
            return;
        }
        self.dram.set_fault(faults.plan(site::DRAM));
        for (i, l2) in self.l2.iter_mut().enumerate() {
            l2.cache.set_fault(faults.plan(site::l2(i)));
        }
        if let Some(l3) = &mut self.l3 {
            l3.cache.set_fault(faults.plan(site::L3));
        }
    }

    /// Detaches every fault plan above the L1s (recovery masking: a retry
    /// after rollback re-runs the remaining window fault-free).
    pub fn clear_faults(&mut self) {
        self.dram.clear_fault();
        for l2 in &mut self.l2 {
            l2.cache.clear_fault();
        }
        if let Some(l3) = &mut self.l3 {
            l3.cache.clear_fault();
        }
    }

    /// Decisions drawn across every fault plan attached above the L1s
    /// (DRAM + shared cache levels) — input to the per-site determinism
    /// audit: equal totals at equal simulation points mean the shared
    /// hierarchy consumed its decision streams identically.
    pub fn fault_draws(&self) -> u64 {
        self.dram.fault_draws()
            + self.l2.iter().map(|l| l.cache.fault_draws()).sum::<u64>()
            + self.l3.as_ref().map_or(0, |l| l.cache.fault_draws())
    }

    /// Appends everything in flight above the L1s: every shared level,
    /// the DRAM, the routing tag maps and the per-core response queues.
    pub fn save_state(&self, w: &mut Writer) {
        for l2 in &self.l2 {
            l2.save_state(w);
        }
        if let Some(l3) = &self.l3 {
            l3.save_state(w);
        }
        self.dram.save_state(w);
        self.dram_tags.save_state(w);
        for q in &self.core_rsp {
            q.save(w);
        }
    }

    /// Restores the hierarchy in place. The level structure (cluster
    /// count, presence of L2/L3) comes from this hierarchy's own
    /// configuration, never from the payload.
    pub fn restore_state(&mut self, r: &mut Reader<'_>) -> SnapResult<()> {
        for l2 in &mut self.l2 {
            l2.restore_state(r)?;
        }
        if let Some(l3) = &mut self.l3 {
            l3.restore_state(r)?;
        }
        self.dram.restore_state(r)?;
        self.dram_tags.restore_state(r)?;
        for q in &mut self.core_rsp {
            *q = VecDeque::load(r)?;
        }
        Ok(())
    }

    /// Queue depths across the whole hierarchy, for hang diagnosis.
    pub fn occupancy(&self) -> HierarchyOccupancy {
        let (dram_input, dram_in_flight, dram_responses) = self.dram.occupancy();
        HierarchyOccupancy {
            dram_input,
            dram_in_flight,
            dram_responses,
            dram_dropped: self.dram.dropped_rsps,
            outstanding_tags: self.dram_tags.len(),
            l2: self.l2.iter().map(|l| l.cache.occupancy()).collect(),
            l3: self.l3.as_ref().map(|l| l.cache.occupancy()),
            core_rsp_pending: self.core_rsp.iter().map(VecDeque::len).sum(),
        }
    }
}

/// Queue depths across the shared memory system, for hang diagnosis.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HierarchyOccupancy {
    /// Requests queued at the DRAM controller input.
    pub dram_input: usize,
    /// Accesses in flight inside DRAM.
    pub dram_in_flight: usize,
    /// DRAM read responses not yet routed.
    pub dram_responses: usize,
    /// Read responses dropped by fault injection (each one strands a tag).
    pub dram_dropped: u64,
    /// Routing tags awaiting a response — reads the hierarchy still owes.
    pub outstanding_tags: usize,
    /// Per-cluster L2 occupancy (empty when no L2 is configured).
    pub l2: Vec<CacheOccupancy>,
    /// L3 occupancy when configured.
    pub l3: Option<CacheOccupancy>,
    /// Fill responses queued on core ports, not yet consumed.
    pub core_rsp_pending: usize,
}

impl fmt::Display for HierarchyOccupancy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dram: input={} in-flight={} rsp={} dropped={} owed-tags={} core-rsp={}",
            self.dram_input,
            self.dram_in_flight,
            self.dram_responses,
            self.dram_dropped,
            self.outstanding_tags,
            self.core_rsp_pending,
        )?;
        for (i, l2) in self.l2.iter().enumerate() {
            write!(f, "\n    L2[{i}]: {l2}")?;
        }
        if let Some(l3) = &self.l3 {
            write!(f, "\n    L3: {l3}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(h: &mut MemHierarchy, core: usize, mut reqs: Vec<MemReq>, max: u64) -> Vec<Tag> {
        let mut got = Vec::new();
        for _ in 0..max {
            if let Some(req) = reqs.first().copied() {
                if h.push_req(core, req).is_ok() {
                    reqs.remove(0);
                }
            }
            h.tick();
            while let Some(rsp) = h.pop_rsp(core) {
                got.push(rsp.tag);
            }
            if reqs.is_empty() && h.is_idle() {
                break;
            }
        }
        got
    }

    #[test]
    fn flat_hierarchy_round_trips() {
        let mut h = MemHierarchy::new(HierarchyConfig::flat(
            2,
            DramConfig {
                latency: 10,
                channels: 2,
                queue_size: 8,
            },
        ));
        let got = drive(&mut h, 0, vec![MemReq::read(5, 0x40), MemReq::read(6, 0x80)], 200);
        assert_eq!(got, vec![5, 6]);
    }

    #[test]
    fn l2_filters_repeat_fills() {
        let mut cfg = HierarchyConfig::flat(1, DramConfig::default());
        cfg.l2 = Some(l2_default());
        let mut h = MemHierarchy::new(cfg);
        // Same line twice: second time the L2 hits, DRAM sees one read.
        let got = drive(&mut h, 0, vec![MemReq::read(1, 0x100)], 1000);
        assert_eq!(got, vec![1]);
        let got = drive(&mut h, 0, vec![MemReq::read(2, 0x100)], 1000);
        assert_eq!(got, vec![2]);
        assert_eq!(h.dram_reads(), 1, "L2 must absorb the second fill");
    }

    #[test]
    fn three_level_hierarchy_round_trips() {
        let mut cfg = HierarchyConfig::flat(4, DramConfig::default());
        cfg.cores_per_cluster = 2;
        cfg.l2 = Some(l2_default());
        cfg.l3 = Some(l3_default());
        let mut h = MemHierarchy::new(cfg);
        for core in 0..4 {
            let got = drive(
                &mut h,
                core,
                vec![MemReq::read(100 + core as Tag, 0x40 * core as u32)],
                2000,
            );
            assert_eq!(got, vec![100 + core as Tag], "core {core}");
        }
    }

    #[test]
    fn same_tag_from_two_cores_routes_correctly() {
        let mut h = MemHierarchy::new(HierarchyConfig::flat(
            2,
            DramConfig {
                latency: 5,
                channels: 2,
                queue_size: 8,
            },
        ));
        h.push_req(0, MemReq::read(7, 0x40)).unwrap();
        h.push_req(1, MemReq::read(7, 0x40)).unwrap();
        for _ in 0..50 {
            h.tick();
        }
        assert_eq!(h.pop_rsp(0), Some(MemRsp { tag: 7 }));
        assert_eq!(h.pop_rsp(1), Some(MemRsp { tag: 7 }));
    }

    #[test]
    fn writes_reach_dram_without_responses() {
        let mut h = MemHierarchy::new(HierarchyConfig::flat(1, DramConfig::default()));
        h.push_req(0, MemReq::write(1, 0x40)).unwrap();
        for _ in 0..200 {
            h.tick();
        }
        assert_eq!(h.dram_writes(), 1);
        assert!(h.pop_rsp(0).is_none());
        assert!(h.is_idle());
    }
}
