//! The multi-level memory hierarchy.
//!
//! Composes the levels of Figure 4: per-core L1 caches below an optional
//! shared L2 per cluster, an optional L3 shared by clusters, and the DRAM
//! at the bottom. [`MemHierarchy`] owns everything *above* the L1s: it
//! exposes one port per core on which the cores push their L1 miss traffic
//! and receive fills back.
//!
//! Tag management: every level re-tags requests with a fresh id and records
//! `(source port, original tag)` so responses route back even when two
//! cores fill the same line address concurrently.
//!
//! # Sharding
//!
//! The hierarchy is split along the cluster boundary: each per-cluster L2,
//! together with its slice of core ports, lives in a [`ClusterShard`] that
//! can be ticked independently (and therefore concurrently — the shards sit
//! behind `Mutex`es so the commit phase can fan them out over worker
//! threads). Everything below the L2s — the optional L3, the DRAM and the
//! routing tables that span clusters — is advanced by [`MemHierarchy::merge`],
//! which always runs serially and visits shards in ascending cluster order,
//! keeping the cycle-level behaviour identical to a fully serial tick.

use crate::cache::{Cache, CacheConfig, CacheOccupancy};
use crate::dram::{Dram, DramConfig};
use crate::req::{MemReq, MemRsp, Tag};
use std::collections::VecDeque;
use std::fmt;
use std::sync::Mutex;
use vortex_faults::{site, FaultConfig};
use vortex_snapshot::{Reader, Snap, SnapError, SnapResult, Writer};

/// Hierarchy shape above the L1s.
#[derive(Debug, Clone)]
pub struct HierarchyConfig {
    /// Number of core ports (one per core: I$ + D$ traffic share it).
    pub num_cores: usize,
    /// Cores per cluster (for L2 sharing); must divide `num_cores`.
    pub cores_per_cluster: usize,
    /// Optional shared L2 per cluster.
    pub l2: Option<CacheConfig>,
    /// Optional L3 shared by all clusters.
    pub l3: Option<CacheConfig>,
    /// DRAM parameters.
    pub dram: DramConfig,
}

impl HierarchyConfig {
    /// A hierarchy with no L2/L3: cores talk straight to DRAM.
    pub fn flat(num_cores: usize, dram: DramConfig) -> Self {
        Self {
            num_cores,
            cores_per_cluster: num_cores.max(1),
            l2: None,
            l3: None,
            dram,
        }
    }

    fn num_clusters(&self) -> usize {
        self.num_cores.div_ceil(self.cores_per_cluster)
    }
}

/// Default L2: 128 KiB, 8 banks, 64 B lines.
pub fn l2_default() -> CacheConfig {
    CacheConfig {
        size_bytes: 128 * 1024,
        line_bytes: 64,
        num_banks: 8,
        num_ways: 2,
        ports: 1,
        mshr_size: 32,
        input_queue: 4,
        memq_size: 16,
    }
}

/// Default L3: 512 KiB, 8 banks, 64 B lines.
pub fn l3_default() -> CacheConfig {
    CacheConfig {
        size_bytes: 512 * 1024,
        line_bytes: 64,
        num_banks: 8,
        num_ways: 4,
        ports: 1,
        mshr_size: 64,
        input_queue: 4,
        memq_size: 16,
    }
}

/// Remembers where a re-tagged request came from.
///
/// The wrapped tag *is* the slot index, so routing a response back is an
/// array read instead of a hash lookup, and a slot freed by one response is
/// reused by a later request without touching the allocator. The free list
/// is LIFO and its order is part of the serialized state: future tag values
/// ride inside in-flight `MemReq`s, so a restore must replay the exact same
/// assignment sequence. Tag values are otherwise opaque — no level orders
/// or times on them — which keeps slot reuse timing-invariant.
#[derive(Debug)]
struct TagTable {
    slots: Vec<Option<(usize, Tag)>>,
    /// Free slot indices, popped LIFO.
    free: Vec<Tag>,
    live: usize,
    /// Most slots ever simultaneously live (host diagnostic, not state).
    high_water: usize,
    /// Times the table grew past its reservation. Zero on fault-free runs;
    /// dropped DRAM responses (fault injection) strand slots by design and
    /// may force growth.
    grows: u64,
}

impl TagTable {
    fn with_capacity(cap: usize) -> Self {
        Self {
            slots: vec![None; cap],
            // Reverse so pops hand out 0, 1, 2, … — matches a fresh table's
            // natural numbering and keeps unit-test tags readable.
            free: (0..cap as Tag).rev().collect(),
            live: 0,
            high_water: 0,
            grows: 0,
        }
    }

    fn wrap(&mut self, port: usize, orig: Tag) -> Tag {
        let tag = match self.free.pop() {
            Some(t) => t,
            None => {
                self.grows += 1;
                self.slots.push(None);
                (self.slots.len() - 1) as Tag
            }
        };
        self.slots[tag as usize] = Some((port, orig));
        self.live += 1;
        self.high_water = self.high_water.max(self.live);
        tag
    }

    fn unwrap(&mut self, tag: Tag) -> Option<(usize, Tag)> {
        let entry = self.slots.get_mut(tag as usize)?.take()?;
        self.free.push(tag);
        self.live -= 1;
        Some(entry)
    }

    fn is_empty(&self) -> bool {
        self.live == 0
    }

    fn len(&self) -> usize {
        self.live
    }

    /// Serialized as the full slot array plus the free list *in order* —
    /// the LIFO order decides which tag values future requests get, and
    /// those values must match the ones already riding in serialized
    /// in-flight requests.
    fn save_state(&self, w: &mut Writer) {
        self.slots.save(w);
        self.free.save(w);
    }

    fn restore_state(&mut self, r: &mut Reader<'_>) -> SnapResult<()> {
        let slots = Vec::<Option<(usize, Tag)>>::load(r)?;
        let free = Vec::<Tag>::load(r)?;
        let live = slots.iter().filter(|s| s.is_some()).count();
        if live + free.len() != slots.len() {
            return Err(SnapError::BadValue("tag table accounting"));
        }
        for &f in &free {
            match slots.get(f as usize) {
                Some(None) => {}
                _ => return Err(SnapError::BadValue("tag table free list")),
            }
        }
        self.slots = slots;
        self.free = free;
        self.live = live;
        self.high_water = live;
        self.grows = 0;
        Ok(())
    }
}

/// A cache level shared by several upstream ports.
///
/// All queues are reserved at construction and never reallocate in steady
/// state: `pending` is bounded by its admission check, each `rsp_out` queue
/// is drained every cycle and can gain at most a tick's worth of cache
/// responses, and the tag table is sized for the level's maximum number of
/// in-flight reads.
#[derive(Debug)]
struct SharedLevel {
    cache: Cache,
    tags: TagTable,
    /// Requests admitted from upstream but not yet accepted by the bank
    /// selector (bounded by the selector's own backpressure).
    pending: Vec<MemReq>,
    /// Admission bound for `pending`: two slots per upstream port.
    pending_cap: usize,
    /// Responses routed back per upstream port.
    rsp_out: Vec<VecDeque<MemRsp>>,
    /// Reservation for each `rsp_out` queue; the high-water mark is
    /// audited against it by the allocation tests.
    rsp_reserved: usize,
    /// Most responses ever queued on one port (host diagnostic, not state).
    rsp_high_water: usize,
}

impl SharedLevel {
    fn new(config: CacheConfig, ports: usize) -> Self {
        let pending_cap = ports * 2;
        // A single tick can retire at most one access per bank stage, but a
        // fill releasing MSHR subscribers can surface a burst; reserve for
        // the worst realistic burst and audit the high-water mark in tests.
        let rsp_reserved = config.num_banks * config.ports.max(1) * 4 + 16;
        // Reads alive inside the level: staged admissions, bank input
        // queues, pipeline stages, replays, and MSHR subscribers.
        let tag_cap = pending_cap
            + config.num_banks * (config.input_queue + 4) * config.ports.max(1)
            + 2 * config.num_banks * config.mshr_size;
        Self {
            cache: Cache::new(config),
            tags: TagTable::with_capacity(tag_cap),
            pending: Vec::with_capacity(pending_cap),
            pending_cap,
            rsp_out: (0..ports)
                .map(|_| VecDeque::with_capacity(rsp_reserved))
                .collect(),
            rsp_reserved,
            rsp_high_water: 0,
        }
    }

    /// Free admission slots. With no fault gate on this handshake (the
    /// bound is pure capacity), this many [`SharedLevel::admit`] calls are
    /// guaranteed to succeed back to back.
    fn space(&self) -> usize {
        self.pending_cap - self.pending.len()
    }

    /// Admits an upstream request unconditionally; the caller has checked
    /// [`SharedLevel::space`].
    fn admit(&mut self, port: usize, req: MemReq) {
        debug_assert!(self.pending.len() < self.pending_cap);
        // Writes never produce responses, so don't record a routing entry
        // for them (it would never be reclaimed).
        let tag = if req.write {
            0
        } else {
            self.tags.wrap(port, req.tag)
        };
        self.pending.push(MemReq {
            tag,
            addr: req.addr,
            write: req.write,
        });
    }

    /// Admits an upstream request if the pending buffer has room.
    fn push_req(&mut self, port: usize, req: MemReq) -> Result<(), MemReq> {
        if self.pending.len() >= self.pending_cap {
            return Err(req);
        }
        self.admit(port, req);
        Ok(())
    }

    fn begin_cycle(&mut self) {
        self.cache.begin_cycle();
    }

    fn tick(&mut self) {
        self.cache.offer(&mut self.pending);
        self.cache.tick();
        while let Some(rsp) = self.cache.pop_rsp() {
            if let Some((port, orig)) = self.tags.unwrap(rsp.tag) {
                let q = &mut self.rsp_out[port];
                q.push_back(MemRsp { tag: orig });
                self.rsp_high_water = self.rsp_high_water.max(q.len());
            }
        }
    }

    fn is_idle(&self) -> bool {
        self.pending.is_empty()
            && self.cache.is_idle()
            && self.rsp_out.iter().all(VecDeque::is_empty)
    }

    /// `true` when a tick would change no state and draw no fault
    /// decision: nothing staged for the selector, nothing routed back
    /// upstream, and the cache itself fast-forward idle (which also
    /// rules out an attached fault plan). MSHR entries parked on
    /// in-flight fills do not disqualify — the fill wakes the level.
    fn ff_idle(&self) -> bool {
        self.pending.is_empty()
            && self.cache.ff_idle()
            && self.rsp_out.iter().all(VecDeque::is_empty)
    }

    fn save_state(&self, w: &mut Writer) {
        self.cache.save_state(w);
        self.tags.save_state(w);
        self.pending.save(w);
        for q in &self.rsp_out {
            q.save(w);
        }
    }

    fn restore_state(&mut self, r: &mut Reader<'_>) -> SnapResult<()> {
        self.cache.restore_state(r)?;
        self.tags.restore_state(r)?;
        let n = r.len(1)?;
        if n > self.pending_cap {
            return Err(SnapError::BadValue("pending occupancy"));
        }
        self.pending.clear();
        for _ in 0..n {
            self.pending.push(MemReq::load(r)?);
        }
        for q in &mut self.rsp_out {
            let n = r.len(8)?;
            q.clear();
            for _ in 0..n {
                q.push_back(MemRsp::load(r)?);
            }
        }
        Ok(())
    }
}

/// One independently tickable slice of the hierarchy: a per-cluster shared
/// L2 plus the core ports of that cluster.
///
/// Shards have no references into each other or into the serial remainder
/// (L3/DRAM), so distinct shards can tick on distinct threads. Traffic
/// crossing the cluster boundary in either direction only moves during
/// [`MemHierarchy::merge`], which runs serially.
#[derive(Debug)]
pub struct ClusterShard {
    level: SharedLevel,
    core_lo: usize,
    core_hi: usize,
}

impl ClusterShard {
    /// Global ids of the cores whose L1 miss traffic this shard carries.
    /// Core `core_lo + p` talks on upstream port `p`.
    pub fn core_range(&self) -> std::ops::Range<usize> {
        self.core_lo..self.core_hi
    }

    /// Free admission slots; this many [`ClusterShard::admit`] calls are
    /// guaranteed to succeed (the admission handshake has no fault gate).
    pub fn req_space(&self) -> usize {
        self.level.space()
    }

    /// Admits one L1 miss request on upstream port `port` (0-based within
    /// the cluster). The caller has checked [`ClusterShard::req_space`].
    pub fn admit(&mut self, port: usize, req: MemReq) {
        self.level.admit(port, req);
    }

    /// Fallible form of [`ClusterShard::admit`] for per-request callers.
    pub fn push_req(&mut self, port: usize, req: MemReq) -> Result<(), MemReq> {
        self.level.push_req(port, req)
    }

    /// Drains one response for upstream port `port`.
    pub fn pop_rsp(&mut self, port: usize) -> Option<MemRsp> {
        self.level.rsp_out[port].pop_front()
    }

    /// `true` when a tick would change no state and draw no fault
    /// decision — quiescent shards cost their caller one branch.
    pub fn quiet(&self) -> bool {
        self.level.ff_idle()
    }

    /// Advances the shard one cycle: clears the bank claims and runs the
    /// L2. Miss traffic accumulates in the L2's memory queue until the
    /// next [`MemHierarchy::merge`].
    pub fn begin_and_tick(&mut self) {
        self.level.begin_cycle();
        self.level.tick();
    }

    /// Times the shard's tag table grew past its reservation (allocation
    /// audit; zero on fault-free runs).
    pub fn tag_grows(&self) -> u64 {
        self.level.tags.grows
    }

    /// Most responses ever queued on one upstream port (allocation audit;
    /// must stay at or below [`ClusterShard::rsp_reserved`]).
    pub fn rsp_high_water(&self) -> usize {
        self.level.rsp_high_water
    }

    /// Per-port response-queue reservation.
    pub fn rsp_reserved(&self) -> usize {
        self.level.rsp_reserved
    }
}

/// Moves a cache's miss traffic into the DRAM input queue, re-tagged for
/// routing back to `port`. Fault-free, both queues hand out guaranteed
/// capacity, so the transfer is one batched drain; with a DRAM fault plan
/// attached every push must draw its own handshake decision, so the
/// per-request fallback preserves the exact decision stream.
fn drain_to_dram(dram: &mut Dram, tags: &mut TagTable, cache: &mut Cache, port: usize) {
    if dram.has_fault() {
        while let Some(req) = cache.peek_mem_req().copied() {
            if !dram.can_accept() {
                break;
            }
            let tag = if req.write { 0 } else { tags.wrap(port, req.tag) };
            match dram.push_req(MemReq {
                tag,
                addr: req.addr,
                write: req.write,
            }) {
                Ok(()) => {
                    cache.pop_mem_req();
                }
                Err(_) => {
                    // Injected handshake stall: reclaim the tag.
                    if !req.write {
                        tags.unwrap(tag);
                    }
                    break;
                }
            }
        }
        return;
    }
    let n = cache.mem_req_count().min(dram.space());
    for req in cache.drain_mem_reqs(n) {
        let tag = if req.write { 0 } else { tags.wrap(port, req.tag) };
        let pushed = dram.push_req(MemReq {
            tag,
            addr: req.addr,
            write: req.write,
        });
        debug_assert!(pushed.is_ok(), "space() guaranteed this push");
        let _ = pushed;
    }
}

/// The memory system above the per-core L1 caches.
#[derive(Debug)]
pub struct MemHierarchy {
    config: HierarchyConfig,
    /// Per-cluster shards (empty when no L2 is configured). The mutexes
    /// are uncontended except during the fanned-out commit phase; serial
    /// paths go through `get_mut` and pay nothing.
    shards: Vec<Mutex<ClusterShard>>,
    l3: Option<SharedLevel>,
    dram: Dram,
    dram_tags: TagTable,
    /// Per-core response queues (flat topology only; with L2s configured,
    /// responses ride the shards' port queues instead).
    core_rsp: Vec<VecDeque<MemRsp>>,
}

impl MemHierarchy {
    /// Builds the hierarchy.
    ///
    /// # Panics
    /// Panics if `cores_per_cluster` is zero.
    pub fn new(config: HierarchyConfig) -> Self {
        assert!(config.cores_per_cluster > 0, "cluster size must be non-zero");
        let clusters = config.num_clusters();
        let shards = match &config.l2 {
            Some(cfg) => (0..clusters)
                .map(|ci| {
                    let core_lo = ci * config.cores_per_cluster;
                    let core_hi = (core_lo + config.cores_per_cluster).min(config.num_cores);
                    Mutex::new(ClusterShard {
                        level: SharedLevel::new(*cfg, config.cores_per_cluster),
                        core_lo,
                        core_hi,
                    })
                })
                .collect(),
            None => Vec::new(),
        };
        let l3 = config
            .l3
            .as_ref()
            .map(|cfg| SharedLevel::new(*cfg, clusters.max(1)));
        let dcfg = config.dram;
        let dram_cap = dcfg.queue_size + dcfg.channels as usize * dcfg.latency as usize + 8;
        Self {
            dram: Dram::new(dcfg),
            dram_tags: TagTable::with_capacity(dram_cap),
            core_rsp: (0..config.num_cores).map(|_| VecDeque::new()).collect(),
            shards,
            l3,
            config,
        }
    }

    /// Number of cluster shards (0 on a flat hierarchy).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard array, for callers fanning the commit phase over worker
    /// threads. Each shard's mutex must be held while ticking it.
    pub fn shards(&self) -> &[Mutex<ClusterShard>] {
        &self.shards
    }

    /// Direct (lock-free) access to one shard from serial code.
    pub fn shard_mut(&mut self, i: usize) -> &mut ClusterShard {
        self.shards[i].get_mut().unwrap()
    }

    /// Guaranteed flat-path admissions this cycle: free DRAM input slots,
    /// or 0 when the topology has L2s (use the shards) or a DRAM fault
    /// plan gates every handshake individually (use
    /// [`MemHierarchy::push_req`] per request).
    pub fn flat_space(&self) -> usize {
        if !self.shards.is_empty() || self.dram.has_fault() {
            0
        } else {
            self.dram.space()
        }
    }

    /// Admits one request straight to DRAM; the caller has checked
    /// [`MemHierarchy::flat_space`].
    pub fn admit_flat(&mut self, core: usize, req: MemReq) {
        let tag = if req.write {
            0
        } else {
            self.dram_tags.wrap(core, req.tag)
        };
        let pushed = self.dram.push_req(MemReq {
            tag,
            addr: req.addr,
            write: req.write,
        });
        debug_assert!(pushed.is_ok(), "flat_space() guaranteed this push");
        let _ = pushed;
    }

    /// Pushes one L1 miss-traffic request from `core`. Fails on
    /// backpressure; the core retries next cycle.
    ///
    /// # Panics
    /// Panics if `core` is out of range.
    pub fn push_req(&mut self, core: usize, req: MemReq) -> Result<(), MemReq> {
        assert!(core < self.config.num_cores, "core id out of range");
        if self.shards.is_empty() {
            // Straight to DRAM (re-tagged for routing).
            if !self.dram.can_accept() {
                return Err(req);
            }
            let tag = if req.write {
                0
            } else {
                self.dram_tags.wrap(core, req.tag)
            };
            match self.dram.push_req(MemReq {
                tag,
                addr: req.addr,
                write: req.write,
            }) {
                Ok(()) => Ok(()),
                Err(r) => {
                    // The push can fail even after `can_accept` when a fault
                    // plan stalls the handshake: reclaim the routing tag or
                    // it leaks and the hierarchy never reads as idle again.
                    if !req.write {
                        self.dram_tags.unwrap(tag);
                    }
                    Err(MemReq {
                        tag: req.tag,
                        addr: r.addr,
                        write: r.write,
                    })
                }
            }
        } else {
            let cluster = core / self.config.cores_per_cluster;
            let port = core % self.config.cores_per_cluster;
            self.shards[cluster].get_mut().unwrap().push_req(port, req)
        }
    }

    /// Pops one fill response destined for `core`.
    pub fn pop_rsp(&mut self, core: usize) -> Option<MemRsp> {
        if self.shards.is_empty() {
            self.core_rsp[core].pop_front()
        } else {
            let cluster = core / self.config.cores_per_cluster;
            let port = core % self.config.cores_per_cluster;
            self.shards[cluster].get_mut().unwrap().pop_rsp(port)
        }
    }

    /// Advances the serial remainder below the shards by one cycle:
    /// drains each shard's L2 miss traffic downstream (ascending cluster
    /// order), runs the L3 and the DRAM, and routes completions back up
    /// into the shards' caches. Callers tick the shards first — serially
    /// or fanned out over threads — then merge; [`MemHierarchy::tick`]
    /// packages that sequence for serial use.
    pub fn merge(&mut self) {
        let num_cores = self.config.num_cores;
        let nshards = self.shards.len();

        // L2 miss traffic → L3 (or DRAM).
        for ci in 0..nshards {
            let cache = &mut self.shards[ci].get_mut().unwrap().level.cache;
            match &mut self.l3 {
                Some(l3) => {
                    // Both sides of this handshake are pure capacity checks,
                    // so the transfer batches exactly.
                    let n = cache.mem_req_count().min(l3.space());
                    for req in cache.drain_mem_reqs(n) {
                        l3.admit(ci, req);
                    }
                }
                None => drain_to_dram(&mut self.dram, &mut self.dram_tags, cache, num_cores + ci),
            }
        }

        // A quiescent L3's tick would be a pure no-op (its bank claims are
        // already clear — see `Cache::ff_idle`), so skip it; admissions
        // above make it non-idle, so nothing staged is ever stranded.
        if let Some(l3) = &mut self.l3 {
            if !l3.ff_idle() {
                l3.begin_cycle();
                l3.tick();
                drain_to_dram(
                    &mut self.dram,
                    &mut self.dram_tags,
                    &mut l3.cache,
                    num_cores + nshards,
                );
            }
        }

        self.dram.tick();

        // DRAM responses → owning level.
        while let Some(rsp) = self.dram.pop_rsp() {
            let Some((port, orig)) = self.dram_tags.unwrap(rsp.tag) else {
                continue;
            };
            if port < num_cores {
                self.core_rsp[port].push_back(MemRsp { tag: orig });
            } else {
                let idx = port - num_cores;
                if idx < nshards {
                    self.shards[idx]
                        .get_mut()
                        .unwrap()
                        .level
                        .cache
                        .push_mem_rsp(MemRsp { tag: orig });
                } else if let Some(l3) = &mut self.l3 {
                    l3.cache.push_mem_rsp(MemRsp { tag: orig });
                }
            }
        }

        // L3 responses → L2 fills.
        if let Some(l3) = &mut self.l3 {
            for ci in 0..nshards {
                if l3.rsp_out[ci].is_empty() {
                    continue;
                }
                let cache = &mut self.shards[ci].get_mut().unwrap().level.cache;
                while let Some(rsp) = l3.rsp_out[ci].pop_front() {
                    cache.push_mem_rsp(rsp);
                }
            }
        }
    }

    /// Advances every shared level and the DRAM by one cycle, moving
    /// traffic between levels — the serial packaging of "tick every
    /// non-quiescent shard, then merge".
    pub fn tick(&mut self) {
        for shard in &mut self.shards {
            let shard = shard.get_mut().unwrap();
            if !shard.quiet() {
                shard.begin_and_tick();
            }
        }
        self.merge();
    }

    /// Flushes every shared cache level (part of the `fence` path).
    pub fn flush(&mut self) {
        for shard in &mut self.shards {
            shard.get_mut().unwrap().level.cache.flush();
        }
        if let Some(l3) = &mut self.l3 {
            l3.cache.flush();
        }
    }

    /// `true` when nothing is in flight anywhere above the L1s.
    pub fn is_idle(&self) -> bool {
        self.dram.is_idle()
            && self.dram_tags.is_empty()
            && self
                .shards
                .iter()
                .all(|s| s.lock().unwrap().level.is_idle())
            && self.l3.as_ref().is_none_or(SharedLevel::is_idle)
            && self.core_rsp.iter().all(VecDeque::is_empty)
    }

    /// The earliest cycle whose [`MemHierarchy::tick`] could change
    /// state above the L1s. With work queued in any shared level (or a
    /// fault plan attached to one), fill responses waiting on core
    /// ports, or queued/fault work at the DRAM, that is `now`; with
    /// only DRAM accesses in flight it is the tick on which the oldest
    /// one retires; when everything above the L1s is drained,
    /// `u64::MAX` (outstanding routing tags alone hold no event — they
    /// wait on DRAM in-flight entries, which are accounted here).
    pub fn next_event_cycle(&self, now: u64) -> u64 {
        let levels_idle = self.shards.iter().all(|s| s.lock().unwrap().quiet())
            && self.l3.as_ref().is_none_or(SharedLevel::ff_idle)
            && self.core_rsp.iter().all(VecDeque::is_empty);
        if !levels_idle {
            return now;
        }
        self.dram.next_event_cycle()
    }

    /// The bulk equivalent of `delta` certified-idle ticks (see
    /// [`MemHierarchy::next_event_cycle`]): every queue above the L1s
    /// is empty, so the only per-tick effects are the shared levels'
    /// `begin_cycle` (a no-op on an idle selector) and the DRAM clock
    /// advancing.
    pub fn bulk_advance(&mut self, delta: u64) {
        for shard in &mut self.shards {
            shard.get_mut().unwrap().level.begin_cycle();
        }
        if let Some(l3) = &mut self.l3 {
            l3.begin_cycle();
        }
        self.dram.advance(delta);
    }

    /// Total DRAM reads serviced.
    pub fn dram_reads(&self) -> u64 {
        self.dram.total_reads
    }

    /// Total DRAM writes serviced.
    pub fn dram_writes(&self) -> u64 {
        self.dram.total_writes
    }

    /// Read responses dropped by fault injection.
    pub fn dram_dropped(&self) -> u64 {
        self.dram.dropped_rsps
    }

    /// L2 statistics per cluster (empty when no L2 is configured).
    pub fn l2_stats(&self) -> Vec<crate::cache::CacheStats> {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().level.cache.stats)
            .collect()
    }

    /// Times any routing tag table grew past its reservation — the
    /// allocation audit's headline number; zero on fault-free runs.
    pub fn tag_grows(&self) -> u64 {
        self.dram_tags.grows
            + self
                .shards
                .iter()
                .map(|s| s.lock().unwrap().tag_grows())
                .sum::<u64>()
            + self.l3.as_ref().map_or(0, |l| l.tags.grows)
    }

    /// The configuration this hierarchy was built with.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Derives and attaches fault plans for the DRAM and every shared
    /// cache level. Each component gets its own decision stream, so runs
    /// are reproducible for a given seed regardless of topology.
    pub fn apply_faults(&mut self, faults: &FaultConfig) {
        if faults.is_noop() {
            return;
        }
        self.dram.set_fault(faults.plan(site::DRAM));
        for (i, shard) in self.shards.iter_mut().enumerate() {
            shard
                .get_mut()
                .unwrap()
                .level
                .cache
                .set_fault(faults.plan(site::l2(i)));
        }
        if let Some(l3) = &mut self.l3 {
            l3.cache.set_fault(faults.plan(site::L3));
        }
    }

    /// Detaches every fault plan above the L1s (recovery masking: a retry
    /// after rollback re-runs the remaining window fault-free).
    pub fn clear_faults(&mut self) {
        self.dram.clear_fault();
        for shard in &mut self.shards {
            shard.get_mut().unwrap().level.cache.clear_fault();
        }
        if let Some(l3) = &mut self.l3 {
            l3.cache.clear_fault();
        }
    }

    /// Decisions drawn across every fault plan attached above the L1s
    /// (DRAM + shared cache levels) — input to the per-site determinism
    /// audit: equal totals at equal simulation points mean the shared
    /// hierarchy consumed its decision streams identically.
    pub fn fault_draws(&self) -> u64 {
        self.dram.fault_draws()
            + self
                .shards
                .iter()
                .map(|s| s.lock().unwrap().level.cache.fault_draws())
                .sum::<u64>()
            + self.l3.as_ref().map_or(0, |l| l.cache.fault_draws())
    }

    /// Appends everything in flight above the L1s: every shard's shared
    /// level, the L3, the DRAM, the routing tag tables and the per-core
    /// response queues.
    pub fn save_state(&self, w: &mut Writer) {
        for shard in &self.shards {
            shard.lock().unwrap().level.save_state(w);
        }
        if let Some(l3) = &self.l3 {
            l3.save_state(w);
        }
        self.dram.save_state(w);
        self.dram_tags.save_state(w);
        for q in &self.core_rsp {
            q.save(w);
        }
    }

    /// Restores the hierarchy in place. The level structure (cluster
    /// count, presence of L2/L3) comes from this hierarchy's own
    /// configuration, never from the payload.
    pub fn restore_state(&mut self, r: &mut Reader<'_>) -> SnapResult<()> {
        for shard in &mut self.shards {
            shard.get_mut().unwrap().level.restore_state(r)?;
        }
        if let Some(l3) = &mut self.l3 {
            l3.restore_state(r)?;
        }
        self.dram.restore_state(r)?;
        self.dram_tags.restore_state(r)?;
        for q in &mut self.core_rsp {
            *q = VecDeque::load(r)?;
        }
        Ok(())
    }

    /// Queue depths across the whole hierarchy, for hang diagnosis.
    pub fn occupancy(&self) -> HierarchyOccupancy {
        let (dram_input, dram_in_flight, dram_responses) = self.dram.occupancy();
        HierarchyOccupancy {
            dram_input,
            dram_in_flight,
            dram_responses,
            dram_dropped: self.dram.dropped_rsps,
            outstanding_tags: self.dram_tags.len(),
            l2: self
                .shards
                .iter()
                .map(|s| s.lock().unwrap().level.cache.occupancy())
                .collect(),
            l3: self.l3.as_ref().map(|l| l.cache.occupancy()),
            core_rsp_pending: self.core_rsp.iter().map(VecDeque::len).sum::<usize>()
                + self
                    .shards
                    .iter()
                    .map(|s| {
                        s.lock()
                            .unwrap()
                            .level
                            .rsp_out
                            .iter()
                            .map(VecDeque::len)
                            .sum::<usize>()
                    })
                    .sum::<usize>(),
        }
    }
}

/// Queue depths across the shared memory system, for hang diagnosis.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HierarchyOccupancy {
    /// Requests queued at the DRAM controller input.
    pub dram_input: usize,
    /// Accesses in flight inside DRAM.
    pub dram_in_flight: usize,
    /// DRAM read responses not yet routed.
    pub dram_responses: usize,
    /// Read responses dropped by fault injection (each one strands a tag).
    pub dram_dropped: u64,
    /// Routing tags awaiting a response — reads the hierarchy still owes.
    pub outstanding_tags: usize,
    /// Per-cluster L2 occupancy (empty when no L2 is configured).
    pub l2: Vec<CacheOccupancy>,
    /// L3 occupancy when configured.
    pub l3: Option<CacheOccupancy>,
    /// Fill responses queued on core ports, not yet consumed.
    pub core_rsp_pending: usize,
}

impl fmt::Display for HierarchyOccupancy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dram: input={} in-flight={} rsp={} dropped={} owed-tags={} core-rsp={}",
            self.dram_input,
            self.dram_in_flight,
            self.dram_responses,
            self.dram_dropped,
            self.outstanding_tags,
            self.core_rsp_pending,
        )?;
        for (i, l2) in self.l2.iter().enumerate() {
            write!(f, "\n    L2[{i}]: {l2}")?;
        }
        if let Some(l3) = &self.l3 {
            write!(f, "\n    L3: {l3}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(h: &mut MemHierarchy, core: usize, mut reqs: Vec<MemReq>, max: u64) -> Vec<Tag> {
        let mut got = Vec::new();
        for _ in 0..max {
            if let Some(req) = reqs.first().copied() {
                if h.push_req(core, req).is_ok() {
                    reqs.remove(0);
                }
            }
            h.tick();
            while let Some(rsp) = h.pop_rsp(core) {
                got.push(rsp.tag);
            }
            if reqs.is_empty() && h.is_idle() {
                break;
            }
        }
        got
    }

    #[test]
    fn flat_hierarchy_round_trips() {
        let mut h = MemHierarchy::new(HierarchyConfig::flat(
            2,
            DramConfig {
                latency: 10,
                channels: 2,
                queue_size: 8,
            },
        ));
        let got = drive(&mut h, 0, vec![MemReq::read(5, 0x40), MemReq::read(6, 0x80)], 200);
        assert_eq!(got, vec![5, 6]);
    }

    #[test]
    fn l2_filters_repeat_fills() {
        let mut cfg = HierarchyConfig::flat(1, DramConfig::default());
        cfg.l2 = Some(l2_default());
        let mut h = MemHierarchy::new(cfg);
        // Same line twice: second time the L2 hits, DRAM sees one read.
        let got = drive(&mut h, 0, vec![MemReq::read(1, 0x100)], 1000);
        assert_eq!(got, vec![1]);
        let got = drive(&mut h, 0, vec![MemReq::read(2, 0x100)], 1000);
        assert_eq!(got, vec![2]);
        assert_eq!(h.dram_reads(), 1, "L2 must absorb the second fill");
    }

    #[test]
    fn three_level_hierarchy_round_trips() {
        let mut cfg = HierarchyConfig::flat(4, DramConfig::default());
        cfg.cores_per_cluster = 2;
        cfg.l2 = Some(l2_default());
        cfg.l3 = Some(l3_default());
        let mut h = MemHierarchy::new(cfg);
        for core in 0..4 {
            let got = drive(
                &mut h,
                core,
                vec![MemReq::read(100 + core as Tag, 0x40 * core as u32)],
                2000,
            );
            assert_eq!(got, vec![100 + core as Tag], "core {core}");
        }
    }

    #[test]
    fn same_tag_from_two_cores_routes_correctly() {
        let mut h = MemHierarchy::new(HierarchyConfig::flat(
            2,
            DramConfig {
                latency: 5,
                channels: 2,
                queue_size: 8,
            },
        ));
        h.push_req(0, MemReq::read(7, 0x40)).unwrap();
        h.push_req(1, MemReq::read(7, 0x40)).unwrap();
        for _ in 0..50 {
            h.tick();
        }
        assert_eq!(h.pop_rsp(0), Some(MemRsp { tag: 7 }));
        assert_eq!(h.pop_rsp(1), Some(MemRsp { tag: 7 }));
    }

    #[test]
    fn writes_reach_dram_without_responses() {
        let mut h = MemHierarchy::new(HierarchyConfig::flat(1, DramConfig::default()));
        h.push_req(0, MemReq::write(1, 0x40)).unwrap();
        for _ in 0..200 {
            h.tick();
        }
        assert_eq!(h.dram_writes(), 1);
        assert!(h.pop_rsp(0).is_none());
        assert!(h.is_idle());
    }

    /// Six cores in three clusters, all reading the same line through
    /// L2+L3 concurrently: every core must get its own response with its
    /// own tag even though the wrapped tags collide at every level.
    #[test]
    fn concurrent_same_line_fills_from_three_clusters() {
        let mut cfg = HierarchyConfig::flat(6, DramConfig::default());
        cfg.cores_per_cluster = 2;
        cfg.l2 = Some(l2_default());
        cfg.l3 = Some(l3_default());
        let mut h = MemHierarchy::new(cfg);
        for core in 0..6 {
            h.push_req(core, MemReq::read(200 + core as Tag, 0x1C0)).unwrap();
        }
        let mut got = vec![Vec::new(); 6];
        for _ in 0..2000 {
            h.tick();
            for (core, out) in got.iter_mut().enumerate() {
                while let Some(rsp) = h.pop_rsp(core) {
                    out.push(rsp.tag);
                }
            }
            if h.is_idle() {
                break;
            }
        }
        for (core, out) in got.iter().enumerate() {
            assert_eq!(out, &vec![200 + core as Tag], "core {core}");
        }
        assert!(h.is_idle(), "hierarchy must drain");
        // The L3 saw each cluster's fill but DRAM only one line read.
        assert_eq!(h.dram_reads(), 1, "L3 must coalesce the line fill");
    }

    /// Routing slots are recycled LIFO; cycling far more requests than
    /// the table holds must neither grow it nor misroute a response.
    #[test]
    fn tag_slots_recycle_without_growth() {
        let mut cfg = HierarchyConfig::flat(4, DramConfig::default());
        cfg.cores_per_cluster = 2;
        cfg.l2 = Some(l2_default());
        cfg.l3 = Some(l3_default());
        let mut h = MemHierarchy::new(cfg);
        for round in 0..64u32 {
            for core in 0..4usize {
                // Distinct lines so every read misses through to DRAM-side
                // levels and exercises wrap/unwrap on each table.
                let addr = (round * 4 + core as u32) * 0x40;
                let tag = u64::from(round) * 10 + core as Tag;
                let got = drive(&mut h, core, vec![MemReq::read(tag, addr)], 2000);
                assert_eq!(got, vec![tag], "round {round} core {core}");
            }
        }
        assert_eq!(h.tag_grows(), 0, "tag tables must not grow fault-free");
        assert!(h.is_idle());
    }

    /// The allocation audit: a saturating burst through every level must
    /// stay within the construction-time reservations.
    #[test]
    fn reservations_hold_under_burst() {
        let mut cfg = HierarchyConfig::flat(4, DramConfig::default());
        cfg.cores_per_cluster = 2;
        cfg.l2 = Some(l2_default());
        cfg.l3 = Some(l3_default());
        let mut h = MemHierarchy::new(cfg);
        let mut outstanding = vec![0usize; 4];
        let mut next_tag = 0 as Tag;
        for cycle in 0..4000u32 {
            for core in 0..4usize {
                // Keep up to 8 reads in flight per core over mixed lines.
                while outstanding[core] < 8 {
                    let addr = (u32::from(next_tag as u16) % 512) * 0x40;
                    if h.push_req(core, MemReq::read(next_tag, addr)).is_err() {
                        break;
                    }
                    next_tag += 1;
                    outstanding[core] += 1;
                }
            }
            h.tick();
            for core in 0..4usize {
                while h.pop_rsp(core).is_some() {
                    outstanding[core] -= 1;
                }
            }
            if cycle > 3000 && outstanding.iter().all(|&o| o == 0) {
                break;
            }
        }
        assert_eq!(h.tag_grows(), 0, "tag tables must not grow fault-free");
        for si in 0..h.num_shards() {
            let shard = h.shard_mut(si);
            assert!(
                shard.rsp_high_water() <= shard.rsp_reserved(),
                "shard {si} response queues exceeded their reservation"
            );
        }
    }
}
