//! The high-bandwidth non-blocking cache (paper §4.3, Figure 6).
//!
//! Structure, front to back:
//!
//! 1. **Bank selector** — assigns incoming core requests to banks by
//!    address, resolving bank conflicts (one request per bank per cycle).
//!    With virtual multi-porting enabled it coalesces up to `ports`
//!    same-line requests into one bank slot per Algorithm 2 of the paper,
//!    exploiting cache-line locality.
//! 2. **Per-bank four-stage pipeline** — *schedule* (priority: MSHR replay >
//!    memory fill > core request), *tag access*, *data access*, *response*.
//! 3. **MSHR per bank** — outstanding-miss tracking with secondary-miss
//!    merging ([`crate::mshr::Mshr`]).
//! 4. **Bank merger** — coalesces outgoing responses into the single
//!    response port.
//!
//! The two deadlock hazards called out by the paper are prevented the same
//! way the RTL does it: a request only enters a bank pipeline when its MSHR
//! and the memory request queue both have guaranteed space ("early full"
//! signals).
//!
//! The model is write-through/no-write-allocate (the Vortex L1 policy):
//! stores stream to the next level without producing core responses, so
//! only loads generate [`MemRsp`]s.

use crate::elastic::Queue;
use crate::mshr::Mshr;
use crate::req::{MemReq, MemRsp, Tag};
use std::collections::VecDeque;
use std::fmt;
use vortex_faults::FaultPlan;
use vortex_snapshot::{Reader, Snap, SnapError, SnapResult, Writer};

/// One coalesced sub-request inside a bank request (a virtual port).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubReq {
    /// The requester's tag.
    pub tag: Tag,
}

/// A request as seen by a cache bank: one line access carrying up to
/// `ports` coalesced core requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankReq {
    /// Global line address (byte address / line size).
    pub line: u32,
    /// `true` for stores.
    pub write: bool,
    /// The coalesced core requests (1..=ports entries).
    pub subs: Vec<SubReq>,
}

/// Cache geometry and microarchitecture parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Number of single-ported banks.
    pub num_banks: usize,
    /// Associativity (1 = direct-mapped, the Vortex default).
    pub num_ways: usize,
    /// Virtual ports per bank (1 disables coalescing; the paper evaluates
    /// 1, 2 and 4 in Figure 19 / Table 5).
    pub ports: usize,
    /// MSHR capacity per bank, in pending requests.
    pub mshr_size: usize,
    /// Per-bank input FIFO depth.
    pub input_queue: usize,
    /// Outgoing memory-request queue depth (shared by all banks).
    pub memq_size: usize,
}

impl CacheConfig {
    /// The baseline 16 KiB, 4-bank, 64 B-line data cache.
    pub fn dcache_default() -> Self {
        Self {
            size_bytes: 16 * 1024,
            line_bytes: 64,
            num_banks: 4,
            num_ways: 1,
            ports: 1,
            mshr_size: 16,
            input_queue: 2,
            memq_size: 8,
        }
    }

    /// The baseline 8 KiB instruction cache (single bank: SIMT fetch needs
    /// one instruction per cycle — paper §6.3).
    pub fn icache_default() -> Self {
        Self {
            size_bytes: 8 * 1024,
            line_bytes: 64,
            num_banks: 1,
            num_ways: 1,
            ports: 1,
            mshr_size: 4,
            input_queue: 2,
            memq_size: 4,
        }
    }

    /// Sets (lines) per bank.
    pub fn sets_per_bank(&self) -> usize {
        let lines = (self.size_bytes / self.line_bytes) as usize;
        lines / self.num_banks / self.num_ways
    }

    fn validate(&self) {
        assert!(self.line_bytes.is_power_of_two(), "line size not a power of two");
        assert!(self.num_banks.is_power_of_two(), "bank count not a power of two");
        assert!(self.ports >= 1, "need at least one port");
        assert!(self.num_ways >= 1, "need at least one way");
        assert!(self.sets_per_bank() >= 1, "cache too small for geometry");
    }
}

/// Aggregate cache performance counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Core read requests accepted.
    pub reads: u64,
    /// Core write requests accepted.
    pub writes: u64,
    /// Read hits.
    pub read_hits: u64,
    /// Read misses (primary + secondary).
    pub read_misses: u64,
    /// Secondary misses merged into an existing MSHR entry.
    pub mshr_merges: u64,
    /// Requests offered to the bank selector.
    pub offered: u64,
    /// Requests accepted by the bank selector (including coalesced ones).
    pub accepted: u64,
    /// Requests rejected because the target bank was already claimed this
    /// cycle (a *bank conflict*).
    pub bank_conflicts: u64,
    /// Requests rejected because the bank's input FIFO was full.
    pub fifo_full_rejects: u64,
    /// Requests coalesced onto an already-claimed bank slot via virtual
    /// ports (these count as accepted, not as conflicts).
    pub port_coalesced: u64,
    /// Cycles a bank's scheduler stalled a ready core request on the
    /// early-full (MSHR or memory-queue) signals.
    pub early_full_stalls: u64,
    /// Cache flushes executed.
    pub flushes: u64,
}

impl CacheStats {
    /// Bank utilization as defined for Figure 19: the fraction of offered
    /// requests that did not directly experience a bank conflict (stalls
    /// from full input FIFOs don't count against utilization).
    pub fn bank_utilization(&self) -> f64 {
        let considered = self.offered - self.fifo_full_rejects;
        if considered == 0 {
            1.0
        } else {
            1.0 - (self.bank_conflicts as f64) / (considered as f64)
        }
    }

    /// Read hit rate.
    ///
    /// **Zero-access convention:** a cache that served no reads reports
    /// `1.0` (vacuously "never missed"). That keeps ratio arithmetic in
    /// sweep aggregations total, but it is *not* a measurement — reporting
    /// code that would otherwise print a phantom "100%" for an idle cache
    /// should use [`CacheStats::measured_hit_rate`] and render `None` as
    /// `-`/`n/a`.
    pub fn hit_rate(&self) -> f64 {
        self.measured_hit_rate().unwrap_or(1.0)
    }

    /// Read hit rate, or `None` when no reads were served (idle cache) —
    /// the distinction [`CacheStats::hit_rate`] erases.
    pub fn measured_hit_rate(&self) -> Option<f64> {
        if self.reads == 0 {
            None
        } else {
            Some(self.read_hits as f64 / self.reads as f64)
        }
    }

    /// Folds another cache's counters into this one (used to aggregate
    /// per-core L1 counters into a whole-GPU view).
    pub fn merge(&mut self, other: &CacheStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.read_hits += other.read_hits;
        self.read_misses += other.read_misses;
        self.mshr_merges += other.mshr_merges;
        self.offered += other.offered;
        self.accepted += other.accepted;
        self.bank_conflicts += other.bank_conflicts;
        self.fifo_full_rejects += other.fifo_full_rejects;
        self.port_coalesced += other.port_coalesced;
        self.early_full_stalls += other.early_full_stalls;
        self.flushes += other.flushes;
    }
}

impl Snap for SubReq {
    fn save(&self, w: &mut Writer) {
        w.u64(self.tag);
    }
    fn load(r: &mut Reader<'_>) -> SnapResult<Self> {
        Ok(Self { tag: r.u64()? })
    }
}

impl Snap for BankReq {
    fn save(&self, w: &mut Writer) {
        w.u32(self.line);
        w.bool(self.write);
        self.subs.save(w);
    }
    fn load(r: &mut Reader<'_>) -> SnapResult<Self> {
        Ok(Self {
            line: r.u32()?,
            write: r.bool()?,
            subs: Vec::load(r)?,
        })
    }
}

impl Snap for CacheStats {
    fn save(&self, w: &mut Writer) {
        w.u64(self.reads);
        w.u64(self.writes);
        w.u64(self.read_hits);
        w.u64(self.read_misses);
        w.u64(self.mshr_merges);
        w.u64(self.offered);
        w.u64(self.accepted);
        w.u64(self.bank_conflicts);
        w.u64(self.fifo_full_rejects);
        w.u64(self.port_coalesced);
        w.u64(self.early_full_stalls);
        w.u64(self.flushes);
    }
    fn load(r: &mut Reader<'_>) -> SnapResult<Self> {
        Ok(Self {
            reads: r.u64()?,
            writes: r.u64()?,
            read_hits: r.u64()?,
            read_misses: r.u64()?,
            mshr_merges: r.u64()?,
            offered: r.u64()?,
            accepted: r.u64()?,
            bank_conflicts: r.u64()?,
            fifo_full_rejects: r.u64()?,
            port_coalesced: r.u64()?,
            early_full_stalls: r.u64()?,
            flushes: r.u64()?,
        })
    }
}

/// What occupies a bank pipeline stage.
#[derive(Debug, Clone)]
struct PipeEntry {
    req: BankReq,
    /// Resolved at the tag stage; replays enter as guaranteed hits.
    hit: bool,
    /// `true` while this entry holds a reserved memory-queue slot (taken at
    /// schedule, released at tag resolution). This is the shared-queue
    /// analogue of the paper's early-full signal: without it two banks
    /// could both observe one free slot and overflow the queue a cycle
    /// later.
    memq_reservation: bool,
}

#[derive(Debug)]
struct Bank {
    input: Queue<BankReq>,
    /// Stage registers: `stage[0]` = tag access, `[1]` = data access,
    /// `[2]` = response.
    stage: [Option<PipeEntry>; 3],
    mshr: Mshr,
    /// Fills that arrived from memory, waiting for a schedule slot.
    fills: VecDeque<u32>,
    /// MSHR entries released by a fill, replayed one per cycle.
    replays: VecDeque<BankReq>,
    /// Tag store: `tags[set][way] = Some(line)` when valid.
    tags: Vec<Vec<Option<u32>>>,
    /// Round-robin victim pointer per set.
    victim: Vec<usize>,
    /// Bank claimed by the selector this cycle (reset by `begin_cycle`).
    claimed: Option<usize>, // index into `input` backing? holds subs count
}

impl Bank {
    fn new(config: &CacheConfig) -> Self {
        let sets = config.sets_per_bank();
        Self {
            input: Queue::new(config.input_queue),
            stage: [None, None, None],
            mshr: Mshr::new(config.mshr_size),
            fills: VecDeque::new(),
            replays: VecDeque::new(),
            tags: vec![vec![None; config.num_ways]; sets],
            victim: vec![0; sets],
            claimed: None,
        }
    }

    fn set_index(&self, line: u32, num_banks: usize) -> usize {
        ((line as usize) / num_banks) % self.tags.len()
    }

    fn lookup(&self, line: u32, num_banks: usize) -> bool {
        let set = self.set_index(line, num_banks);
        self.tags[set].contains(&Some(line))
    }

    fn fill_line(&mut self, line: u32, num_banks: usize) {
        let set = self.set_index(line, num_banks);
        if self.tags[set].contains(&Some(line)) {
            return;
        }
        // Prefer an invalid way, else round-robin eviction (write-through
        // means no writeback on eviction).
        let way = match self.tags[set].iter().position(Option::is_none) {
            Some(w) => w,
            None => {
                let w = self.victim[set];
                self.victim[set] = (w + 1) % self.tags[set].len();
                w
            }
        };
        self.tags[set][way] = Some(line);
    }

    fn invalidate_all(&mut self) {
        for set in &mut self.tags {
            for way in set.iter_mut() {
                *way = None;
            }
        }
    }

    fn in_flight(&self) -> bool {
        !self.input.is_empty()
            || self.stage.iter().any(Option::is_some)
            || !self.mshr.is_empty()
            || !self.fills.is_empty()
            || !self.replays.is_empty()
    }

    /// `true` when a tick would move any state in this bank. Unlike
    /// [`Bank::in_flight`], MSHR-only occupancy does not count: entries
    /// parked on an in-flight fill are untouched until the fill lands in
    /// `fills`, so the whole tick body is a no-op until then.
    fn tick_work(&self) -> bool {
        !self.input.is_empty()
            || self.stage.iter().any(Option::is_some)
            || !self.fills.is_empty()
            || !self.replays.is_empty()
    }

    fn save_state(&self, w: &mut Writer) {
        self.input.save_state(w);
        for stage in &self.stage {
            stage.save(w);
        }
        self.mshr.save_state(w);
        self.fills.save(w);
        self.replays.save(w);
        // Tag array and victim pointers are written in place (geometry is
        // construction state, so no lengths are serialized).
        for set in &self.tags {
            for way in set {
                way.save(w);
            }
        }
        for v in &self.victim {
            w.usize(*v);
        }
        self.claimed.save(w);
    }

    fn restore_state(&mut self, r: &mut Reader<'_>) -> SnapResult<()> {
        self.input.restore_state(r)?;
        for stage in &mut self.stage {
            *stage = Option::load(r)?;
        }
        self.mshr.restore_state(r)?;
        self.fills = VecDeque::load(r)?;
        self.replays = VecDeque::load(r)?;
        let ways = self.tags.first().map_or(0, Vec::len);
        for set in &mut self.tags {
            for way in set.iter_mut() {
                *way = Option::load(r)?;
            }
        }
        for v in &mut self.victim {
            let p = r.usize()?;
            if ways > 0 && p >= ways {
                return Err(SnapError::BadValue("victim pointer"));
            }
            *v = p;
        }
        self.claimed = Option::load(r)?;
        Ok(())
    }
}

impl Snap for PipeEntry {
    fn save(&self, w: &mut Writer) {
        self.req.save(w);
        w.bool(self.hit);
        w.bool(self.memq_reservation);
    }
    fn load(r: &mut Reader<'_>) -> SnapResult<Self> {
        Ok(Self {
            req: BankReq::load(r)?,
            hit: r.bool()?,
            memq_reservation: r.bool()?,
        })
    }
}

/// The multi-banked non-blocking cache.
#[derive(Debug)]
pub struct Cache {
    config: CacheConfig,
    banks: Vec<Bank>,
    /// Outgoing memory requests (line fills and write-throughs).
    memq: Queue<MemReq>,
    /// Slots of `memq` promised to entries in flight between schedule and
    /// tag resolution.
    memq_reserved: usize,
    /// Coalesced core responses (the bank merger output).
    responses: VecDeque<MemRsp>,
    /// Remaining busy cycles of an in-progress flush.
    flush_busy: u32,
    /// `true` while any bank may hold a per-cycle claim, i.e. since the
    /// last [`Cache::offer`] that accepted a request. Lets
    /// [`Cache::begin_cycle`] skip the bank walk on the (very common)
    /// cycles where no claim was made.
    claims_dirty: bool,
    fault: Option<FaultPlan>,
    /// Retired sub-request buffers kept for reuse: the selector builds one
    /// `subs` vector per accepted bank request, so pooling them keeps the
    /// steady-state request path allocation-free.
    spare_subs: Vec<Vec<SubReq>>,
    /// Performance counters.
    pub stats: CacheStats,
}

/// Queue depths across one cache, for hang diagnosis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheOccupancy {
    /// Requests queued in bank input FIFOs.
    pub bank_inputs: usize,
    /// Entries in flight in bank pipelines.
    pub pipeline: usize,
    /// Pending core requests held in MSHRs (waiting on fills).
    pub mshr_pending: usize,
    /// Fills delivered but not yet scheduled.
    pub fills: usize,
    /// Released MSHR requests waiting to replay.
    pub replays: usize,
    /// Outgoing memory requests not yet drained by the next level.
    pub memq: usize,
    /// Core responses not yet popped.
    pub responses: usize,
}

impl CacheOccupancy {
    /// `true` when nothing is queued anywhere.
    pub fn is_empty(&self) -> bool {
        *self == Self::default()
    }
}

impl fmt::Display for CacheOccupancy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "inq={} pipe={} mshr={} fills={} replays={} memq={} rsp={}",
            self.bank_inputs,
            self.pipeline,
            self.mshr_pending,
            self.fills,
            self.replays,
            self.memq,
            self.responses,
        )
    }
}

impl Cache {
    /// Builds a cache from `config`.
    ///
    /// # Panics
    /// Panics on inconsistent geometry (non-power-of-two line/bank counts,
    /// or capacity smaller than one line per bank).
    pub fn new(config: CacheConfig) -> Self {
        config.validate();
        let banks = (0..config.num_banks).map(|_| Bank::new(&config)).collect();
        Self {
            config,
            banks,
            memq: Queue::new(config.memq_size),
            memq_reserved: 0,
            // Each tick retires at most one bank request per bank, each
            // carrying up to `ports` coalesced subs; owners drain the
            // queue every cycle, so two ticks' worth of headroom keeps
            // the steady state allocation-free.
            responses: VecDeque::with_capacity(config.num_banks * config.ports * 2),
            flush_busy: 0,
            claims_dirty: false,
            fault: None,
            spare_subs: Vec::new(),
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Attaches a fault plan: the request interface may spuriously refuse a
    /// whole cycle's offers (`elastic_stall`), ready responses may be held
    /// back (`cache_rsp_stall`), and incoming fill tags may be corrupted
    /// (`corrupt` — which strands the real line's MSHR entry, a hang).
    pub fn set_fault(&mut self, plan: FaultPlan) {
        self.fault = Some(plan);
    }

    /// Detaches any fault plan (recovery masking after a rollback).
    pub fn clear_fault(&mut self) {
        self.fault = None;
    }

    /// Decisions drawn from the attached fault plan so far (0 when no plan
    /// is attached) — input to the per-site determinism audit.
    pub fn fault_draws(&self) -> u64 {
        self.fault.as_ref().map_or(0, FaultPlan::draws)
    }

    /// Core requests currently parked in MSHRs waiting on fills, summed
    /// across banks. Cheaper than a full [`Cache::occupancy`] walk; the
    /// telemetry sampler reads this once per window.
    pub fn mshr_pending(&self) -> usize {
        self.banks.iter().map(|b| b.mshr.pending()).sum()
    }

    /// Queue depths for hang diagnosis.
    pub fn occupancy(&self) -> CacheOccupancy {
        let mut occ = CacheOccupancy {
            memq: self.memq.len(),
            responses: self.responses.len(),
            ..CacheOccupancy::default()
        };
        for bank in &self.banks {
            occ.bank_inputs += bank.input.len();
            occ.pipeline += bank.stage.iter().filter(|s| s.is_some()).count();
            occ.mshr_pending += bank.mshr.pending();
            occ.fills += bank.fills.len();
            occ.replays += bank.replays.len();
        }
        occ
    }

    fn bank_of(&self, line: u32) -> usize {
        (line as usize) % self.config.num_banks
    }

    /// Non-mutating presence probe: `true` when the line holding `addr` is
    /// resident right now. Touches no stats, queues, or replacement state,
    /// so observers (the PC-level profiler) can ask freely without
    /// perturbing the simulation. A probe is *not* a hit/miss prediction —
    /// an absent line may still coalesce onto an in-flight MSHR entry —
    /// it answers only "was the data already here".
    pub fn probe(&self, addr: u32) -> bool {
        let line = addr / self.config.line_bytes;
        self.banks[self.bank_of(line)].lookup(line, self.config.num_banks)
    }

    /// `true` when a tick (plus the unconditional per-cycle
    /// [`Cache::begin_cycle`]/[`Cache::offer`] calls the owner makes)
    /// would change no state and draw no fault decision: no fault plan
    /// attached (the request interface draws `elastic_stall` on every
    /// offer, even an empty one), no flush in progress, and nothing
    /// queued in the memory queue, response queue, or any bank's
    /// input/pipeline/fill/replay structures. Banks whose only contents
    /// are MSHR entries parked on in-flight fills qualify — their tick
    /// body is a no-op until the fill arrives from the next level.
    pub fn ff_idle(&self) -> bool {
        self.fault.is_none()
            && self.flush_busy == 0
            && self.memq.is_empty()
            && self.responses.is_empty()
            && self.banks.iter().all(|b| {
                b.input.is_empty()
                    && b.stage.iter().all(Option::is_none)
                    && b.fills.is_empty()
                    && b.replays.is_empty()
            })
    }

    /// Starts a new cycle: clears the per-cycle bank-claim state used by the
    /// selector. Call once per cycle before [`Cache::offer`] / [`Cache::tick`].
    pub fn begin_cycle(&mut self) {
        if self.claims_dirty {
            for bank in &mut self.banks {
                bank.claimed = None;
            }
            self.claims_dirty = false;
        }
    }

    /// The bank selector: offers `reqs` (one per active lane) to the banks,
    /// removing the accepted ones from the vector. Implements Algorithm 2's
    /// virtual-port assignment: a bank claimed this cycle still accepts a
    /// request for the *same cache line* while coalesced ports remain.
    ///
    /// Returns the number of requests accepted.
    pub fn offer(&mut self, reqs: &mut Vec<MemReq>) -> usize {
        if reqs.is_empty() && self.fault.is_none() {
            // Nothing offered and no fault plan to draw from (a plan's
            // `elastic_stall` stream consumes one decision per offer,
            // even an empty one): exactly equivalent to falling through
            // the selector loop zero times.
            return 0;
        }
        if self.flush_busy > 0 {
            return 0;
        }
        if let Some(plan) = &mut self.fault {
            if plan.stall_elastic() {
                // Injected handshake stall: the selector refuses this offer
                // wholesale; the requester retries next cycle.
                return 0;
            }
        }
        let mut accepted = 0;
        // Per-bank slot being assembled this cycle: (line, write, sub count).
        let mut i = 0;
        while i < reqs.len() {
            let req = reqs[i];
            let line = req.line_addr(self.config.line_bytes);
            let bank_idx = self.bank_of(line);
            self.stats.offered += 1;
            let ports = self.config.ports;
            let bank = &mut self.banks[bank_idx];

            let take = |bank: &mut Bank,
                        stats: &mut CacheStats,
                        spares: &mut Vec<Vec<SubReq>>|
             -> bool {
                // New claim: needs input FIFO space.
                if bank.input.is_full() {
                    stats.fifo_full_rejects += 1;
                    return false;
                }
                let mut subs = spares.pop().unwrap_or_default();
                subs.push(SubReq { tag: req.tag });
                bank.input
                    .push(BankReq {
                        line,
                        write: req.write,
                        subs,
                    })
                    .expect("space just checked");
                bank.claimed = Some(1);
                true
            };

            let ok = match bank.claimed {
                None => take(bank, &mut self.stats, &mut self.spare_subs),
                Some(used) => {
                    // Algorithm 2: coalesce onto the claimed slot when the
                    // line matches and a virtual port is free. The newest
                    // queued request is widened in place.
                    let newest = bank
                        .input
                        .back_mut()
                        .expect("claimed bank has a queued request");
                    if used < ports && newest.line == line && newest.write == req.write {
                        newest.subs.push(SubReq { tag: req.tag });
                        bank.claimed = Some(used + 1);
                        self.stats.port_coalesced += 1;
                        true
                    } else {
                        self.stats.bank_conflicts += 1;
                        false
                    }
                }
            };

            if ok {
                if req.write {
                    self.stats.writes += 1;
                } else {
                    self.stats.reads += 1;
                }
                self.stats.accepted += 1;
                accepted += 1;
                reqs.remove(i);
            } else {
                i += 1;
            }
        }
        if accepted > 0 {
            // At least one bank took a claim this cycle; the next
            // `begin_cycle` must walk the banks to clear it.
            self.claims_dirty = true;
        }
        accepted
    }

    /// Advances all bank pipelines one cycle.
    pub fn tick(&mut self) {
        if self.flush_busy > 0 {
            self.flush_busy -= 1;
        }
        let num_banks = self.config.num_banks;
        let line_bytes = self.config.line_bytes;
        for bank in &mut self.banks {
            // Workless banks have nothing to shuffle: every stage move and
            // the scheduler below are no-ops, so skipping them changes no
            // state and no stats. Most banks are workless most cycles (the
            // I-cache answers warm fetches via `lookup_for_fetch`, the
            // D-cache sleeps through compute phases, and banks whose only
            // contents are MSHR entries spend whole DRAM round trips
            // waiting for a fill), so this is a large fraction of the
            // simulator's per-cycle cost.
            if !bank.tick_work() {
                continue;
            }
            // Response stage: emit one response per sub (reads only), then
            // recycle the retired request's sub-request buffer.
            if let Some(entry) = bank.stage[2].take() {
                debug_assert!(entry.hit || entry.req.write, "misses never reach response");
                if !entry.req.write {
                    for sub in &entry.req.subs {
                        self.responses.push_back(MemRsp { tag: sub.tag });
                    }
                }
                let mut subs = entry.req.subs;
                if self.spare_subs.len() < 64 {
                    subs.clear();
                    self.spare_subs.push(subs);
                }
            }
            // Data → response.
            if bank.stage[2].is_none() {
                bank.stage[2] = bank.stage[1].take();
            }
            // Tag → data: resolve hit/miss.
            if bank.stage[1].is_none() {
                if let Some(mut entry) = bank.stage[0].take() {
                    if entry.memq_reservation {
                        self.memq_reserved -= 1;
                        entry.memq_reservation = false;
                    }
                    if entry.hit {
                        // Replayed request: guaranteed hit.
                        bank.stage[1] = Some(entry);
                    } else if entry.req.write {
                        // Write-through, no-write-allocate: forward to
                        // memory (space reserved at schedule) and complete.
                        self.memq
                            .push(MemReq {
                                tag: entry.req.line as Tag,
                                addr: entry.req.line * line_bytes,
                                write: true,
                            })
                            .expect("memq space reserved at schedule");
                        entry.hit = bank.lookup(entry.req.line, num_banks);
                        bank.stage[1] = Some(entry);
                    } else if bank.lookup(entry.req.line, num_banks) {
                        self.stats.read_hits += entry.req.subs.len() as u64;
                        entry.hit = true;
                        bank.stage[1] = Some(entry);
                    } else {
                        // Read miss: allocate/merge MSHR; issue a fill only
                        // for primary misses.
                        self.stats.read_misses += entry.req.subs.len() as u64;
                        let line = entry.req.line;
                        let primary = bank.mshr.allocate(line, entry.req);
                        if primary {
                            self.memq
                                .push(MemReq {
                                    tag: line as Tag,
                                    addr: line * line_bytes,
                                    write: false,
                                })
                                .expect("memq space reserved at schedule");
                        } else {
                            self.stats.mshr_merges += 1;
                        }
                    }
                }
            }
            // Schedule: fill > replay > core request (the paper gives the
            // MSHR path priority over new core requests).
            if bank.stage[0].is_none() {
                if let Some(line) = bank.fills.pop_front() {
                    bank.fill_line(line, num_banks);
                    let released = bank.mshr.release(line);
                    bank.replays.extend(released);
                } else if let Some(req) = bank.replays.pop_front() {
                    bank.stage[0] = Some(PipeEntry {
                        req,
                        hit: true,
                        memq_reservation: false,
                    });
                } else if let Some(front) = bank.input.front() {
                    // Early-full checks: a read may need an MSHR slot per
                    // sub and one memq slot; a write needs one memq slot.
                    // The memq check accounts for slots already promised to
                    // other banks' in-flight entries.
                    let subs = front.subs.len();
                    let memq_ok = self.memq.space() > self.memq_reserved;
                    let ok = if front.write {
                        memq_ok
                    } else {
                        bank.mshr.space() >= subs && memq_ok
                    };
                    if ok {
                        let req = bank.input.pop().expect("front just peeked");
                        self.memq_reserved += 1;
                        bank.stage[0] = Some(PipeEntry {
                            req,
                            hit: false,
                            memq_reservation: true,
                        });
                    } else {
                        self.stats.early_full_stalls += 1;
                    }
                }
            }
        }
    }

    /// Fast-path tag probe for instruction fetch: SIMT fetch needs one
    /// word per cycle from a single bank, so the RTL's I-cache answers
    /// hits in two cycles without arbitration. Returns `true` (and counts
    /// a read hit) when `addr`'s line is resident; on `false` the caller
    /// sends the fetch through the normal miss pipeline, which does its
    /// own accounting.
    pub fn lookup_for_fetch(&mut self, addr: u32) -> bool {
        if self.flush_busy > 0 {
            return false;
        }
        let line = addr / self.config.line_bytes;
        let bank = self.bank_of(line);
        if self.banks[bank].lookup(line, self.config.num_banks) {
            self.stats.reads += 1;
            self.stats.read_hits += 1;
            true
        } else {
            false
        }
    }

    /// Pops one coalesced core response. An attached fault plan may hold a
    /// ready response back (`cache_rsp_stall`); it stays queued for a retry.
    pub fn pop_rsp(&mut self) -> Option<MemRsp> {
        if let Some(plan) = &mut self.fault {
            if !self.responses.is_empty() && plan.stall_cache_rsp() {
                return None;
            }
        }
        self.responses.pop_front()
    }

    /// Pops one outgoing memory request (drained by the next level).
    pub fn pop_mem_req(&mut self) -> Option<MemReq> {
        self.memq.pop()
    }

    /// Peeks the outgoing memory request queue.
    pub fn peek_mem_req(&self) -> Option<&MemReq> {
        self.memq.front()
    }

    /// Outgoing memory requests currently queued.
    pub fn mem_req_count(&self) -> usize {
        self.memq.len()
    }

    /// Removes and yields the `n` oldest outgoing memory requests in one
    /// batched transfer — equivalent to `n` `pop_mem_req` calls. Callers
    /// size `n` against the next level's guaranteed admission count so
    /// the per-request peek/pop handshake disappears from the drain path.
    ///
    /// # Panics
    /// Panics if `n` exceeds [`Cache::mem_req_count`].
    pub fn drain_mem_reqs(&mut self, n: usize) -> impl Iterator<Item = MemReq> + '_ {
        self.memq.drain_front(n)
    }

    /// Delivers a memory fill response (tag = line address). An attached
    /// fault plan may corrupt the fill tag, filling the wrong line and
    /// stranding the requests parked on the real one — the MSHR-starvation
    /// hang the watchdog exists to diagnose.
    pub fn push_mem_rsp(&mut self, rsp: MemRsp) {
        let mut line = rsp.tag as u32;
        if let Some(plan) = &mut self.fault {
            plan.corrupt(&mut line);
        }
        let bank = self.bank_of(line);
        self.banks[bank].fills.push_back(line);
    }

    /// Begins a flush: invalidates every line and keeps the cache busy for
    /// `sets_per_bank` cycles (the tag-walk cost). Provides the paper's
    /// weak-coherence `fence`/flush operation.
    pub fn flush(&mut self) {
        for bank in &mut self.banks {
            bank.invalidate_all();
        }
        self.flush_busy = self.config.sets_per_bank() as u32;
        self.stats.flushes += 1;
    }

    /// `true` while a flush is in progress.
    pub fn is_flushing(&self) -> bool {
        self.flush_busy > 0
    }

    /// `true` when no request is anywhere in the cache (used by `fence`).
    pub fn is_idle(&self) -> bool {
        self.flush_busy == 0
            && self.memq.is_empty()
            && self.responses.is_empty()
            && self.banks.iter().all(|b| !b.in_flight())
    }

    /// Appends every architectural bit of the cache: bank pipelines,
    /// MSHRs, tag arrays, queues, fault-plan position and counters. The
    /// geometry itself is construction state (covered by the snapshot's
    /// config fingerprint) and is not serialized.
    pub fn save_state(&self, w: &mut Writer) {
        for bank in &self.banks {
            bank.save_state(w);
        }
        self.memq.save_state(w);
        w.usize(self.memq_reserved);
        self.responses.save(w);
        w.u32(self.flush_busy);
        self.fault.save(w);
        self.stats.save(w);
    }

    /// Restores the cache in place. The sub-request spare pool is scratch
    /// (buffers are cleared before reuse) and restores empty.
    pub fn restore_state(&mut self, r: &mut Reader<'_>) -> SnapResult<()> {
        for bank in &mut self.banks {
            bank.restore_state(r)?;
        }
        self.memq.restore_state(r)?;
        self.memq_reserved = r.usize()?;
        if self.memq_reserved > self.config.memq_size {
            return Err(SnapError::BadValue("memq reservations"));
        }
        // Load responses into the existing backing buffer so the
        // construction-time capacity reservation survives a restore.
        let n = r.len(8)?;
        self.responses.clear();
        for _ in 0..n {
            self.responses.push_back(MemRsp::load(r)?);
        }
        self.flush_busy = r.u32()?;
        self.fault = Option::load(r)?;
        self.stats = CacheStats::load(r)?;
        self.spare_subs.clear();
        // Bank claims are part of the snapshot; recompute the host-side
        // dirty flag so the next `begin_cycle` clears any restored claim.
        self.claims_dirty = self.banks.iter().any(|b| b.claimed.is_some());
        Ok(())
    }
}


#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache(ports: usize) -> Cache {
        Cache::new(CacheConfig {
            size_bytes: 1024,
            line_bytes: 64,
            num_banks: 4,
            num_ways: 1,
            ports,
            mshr_size: 8,
            input_queue: 2,
            memq_size: 8,
        })
    }

    /// Runs the cache with a perfect (instant) next level until idle,
    /// collecting responses.
    fn run_until_idle(cache: &mut Cache, mut reqs: Vec<MemReq>, max_cycles: u64) -> Vec<Tag> {
        let mut got = Vec::new();
        for _ in 0..max_cycles {
            cache.begin_cycle();
            cache.offer(&mut reqs);
            cache.tick();
            // Perfect memory: respond to fills instantly next cycle.
            while let Some(mreq) = cache.pop_mem_req() {
                if !mreq.write {
                    cache.push_mem_rsp(MemRsp { tag: mreq.tag });
                }
            }
            while let Some(rsp) = cache.pop_rsp() {
                got.push(rsp.tag);
            }
            if reqs.is_empty() && cache.is_idle() {
                break;
            }
        }
        got
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small_cache(1);
        let got = run_until_idle(&mut c, vec![MemReq::read(1, 0x100)], 100);
        assert_eq!(got, vec![1]);
        assert_eq!(c.stats.read_misses, 1);
        // Second access to the same line hits.
        let got = run_until_idle(&mut c, vec![MemReq::read(2, 0x104)], 100);
        assert_eq!(got, vec![2]);
        assert_eq!(c.stats.read_hits, 1);
    }

    #[test]
    fn secondary_miss_merges_in_mshr() {
        let mut c = small_cache(1);
        // Two reads to the same line in back-to-back cycles: the second
        // must merge, producing a single memory request.
        let mut reqs = vec![MemReq::read(1, 0x200), MemReq::read(2, 0x204)];
        let mut mem_reads = 0;
        let mut got = Vec::new();
        for _ in 0..200 {
            c.begin_cycle();
            c.offer(&mut reqs);
            c.tick();
            while let Some(mreq) = c.pop_mem_req() {
                if !mreq.write {
                    mem_reads += 1;
                    c.push_mem_rsp(MemRsp { tag: mreq.tag });
                }
            }
            while let Some(rsp) = c.pop_rsp() {
                got.push(rsp.tag);
            }
            if reqs.is_empty() && c.is_idle() {
                break;
            }
        }
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
        assert_eq!(mem_reads, 1, "secondary miss must not issue a second fill");
        assert_eq!(c.stats.mshr_merges, 1);
    }

    #[test]
    fn bank_conflict_without_ports_serializes() {
        let mut c = small_cache(1);
        // Same bank (same line even), offered in the same cycle.
        let mut reqs = vec![MemReq::read(1, 0x300), MemReq::read(2, 0x300)];
        c.begin_cycle();
        let accepted = c.offer(&mut reqs);
        assert_eq!(accepted, 1, "single-port bank takes one request/cycle");
        assert_eq!(c.stats.bank_conflicts, 1);
    }

    #[test]
    fn virtual_ports_coalesce_same_line() {
        let mut c = small_cache(2);
        let mut reqs = vec![MemReq::read(1, 0x300), MemReq::read(2, 0x304)];
        c.begin_cycle();
        let accepted = c.offer(&mut reqs);
        assert_eq!(accepted, 2, "2-port bank coalesces same-line pair");
        assert_eq!(c.stats.bank_conflicts, 0);
        assert_eq!(c.stats.port_coalesced, 1);
    }

    #[test]
    fn virtual_ports_do_not_coalesce_different_lines() {
        let mut c = small_cache(4);
        // Same bank (line 0 and line 4 both map to bank 0), different lines.
        let mut reqs = vec![MemReq::read(1, 0x000), MemReq::read(2, 0x400)];
        c.begin_cycle();
        let accepted = c.offer(&mut reqs);
        assert_eq!(accepted, 1);
        assert_eq!(c.stats.bank_conflicts, 1);
    }

    #[test]
    fn writes_pass_through_without_response() {
        let mut c = small_cache(1);
        let mut reqs = vec![MemReq::write(1, 0x500)];
        let mut wrote = 0;
        for _ in 0..50 {
            c.begin_cycle();
            c.offer(&mut reqs);
            c.tick();
            while let Some(mreq) = c.pop_mem_req() {
                assert!(mreq.write);
                wrote += 1;
            }
            assert!(c.pop_rsp().is_none(), "stores produce no core response");
            if reqs.is_empty() && c.is_idle() {
                break;
            }
        }
        assert_eq!(wrote, 1);
        assert_eq!(c.stats.writes, 1);
    }

    #[test]
    fn flush_invalidates_and_busies() {
        let mut c = small_cache(1);
        let _ = run_until_idle(&mut c, vec![MemReq::read(1, 0x100)], 100);
        c.flush();
        assert!(c.is_flushing());
        assert_eq!(c.stats.flushes, 1);
        // Offer during flush is refused.
        c.begin_cycle();
        let mut reqs = vec![MemReq::read(2, 0x100)];
        assert_eq!(c.offer(&mut reqs), 0);
        // Wait out the flush, then the access misses again.
        for _ in 0..c.config().sets_per_bank() + 1 {
            c.begin_cycle();
            c.tick();
        }
        let got = run_until_idle(&mut c, reqs, 100);
        assert_eq!(got, vec![2]);
        assert_eq!(c.stats.read_misses, 2, "flush must invalidate the line");
    }

    #[test]
    fn utilization_reflects_conflicts() {
        let mut c = small_cache(1);
        let mut reqs = vec![MemReq::read(1, 0x300), MemReq::read(2, 0x300)];
        c.begin_cycle();
        c.offer(&mut reqs);
        assert!(c.stats.bank_utilization() < 1.0);
        let c2 = small_cache(1);
        assert_eq!(c2.stats.bank_utilization(), 1.0);
    }

    #[test]
    fn idle_cache_has_no_measured_hit_rate() {
        // Regression: an idle cache used to be indistinguishable from a
        // perfectly-hitting one (`hit_rate() == 1.0` either way), so
        // reports printed a phantom "100%" for cores that never loaded.
        let idle = CacheStats::default();
        assert_eq!(idle.measured_hit_rate(), None);
        assert_eq!(idle.hit_rate(), 1.0, "vacuous convention is kept");
        let mut c = small_cache(1);
        let _ = run_until_idle(&mut c, vec![MemReq::read(1, 0x100)], 100);
        let measured = c.stats.measured_hit_rate().expect("read was served");
        assert_eq!(measured, c.stats.hit_rate());
    }
}
