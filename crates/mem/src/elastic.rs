//! Elastic (ready/valid) connection primitives.
//!
//! The paper (§4.4) builds every Vortex component out of elastic pipelines:
//! producer and consumer agree on a transfer only when `valid && ready`,
//! which lets stages back-pressure each other without global stall logic.
//! [`Queue`] is the software analogue: a bounded FIFO whose `push` is the
//! valid side (refused when full — the producer must retry next cycle) and
//! whose `pop` is the ready side.

use std::collections::VecDeque;
use vortex_faults::FaultPlan;
use vortex_snapshot::{Reader, Snap, SnapError, SnapResult, Writer};

/// A bounded FIFO with elastic-handshake semantics.
///
/// `push` corresponds to a `valid` assertion: it fails (returning the value
/// back) when the queue is full, modelling de-asserted `ready`.
///
/// A [`FaultPlan`] can be attached with [`Queue::set_fault`] to make the
/// consumer side spuriously de-assert `ready`: pushes are then refused at
/// the plan's `elastic_stall` rate even when space is available. With no
/// plan attached (the default) the handshake is unchanged.
#[derive(Debug, Clone)]
pub struct Queue<T> {
    items: VecDeque<T>,
    capacity: usize,
    fault: Option<FaultPlan>,
}

impl<T> Queue<T> {
    /// Creates a queue holding at most `capacity` elements.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "elastic queue capacity must be non-zero");
        Self {
            items: VecDeque::with_capacity(capacity),
            capacity,
            fault: None,
        }
    }

    /// Attaches a fault plan: pushes are additionally refused at the plan's
    /// `elastic_stall` rate, modelling spurious `ready` de-assertion.
    pub fn set_fault(&mut self, plan: FaultPlan) {
        self.fault = Some(plan);
    }

    /// Detaches any fault plan (recovery masking: a retry after rollback
    /// can re-run the same window fault-free).
    pub fn clear_fault(&mut self) {
        self.fault = None;
    }

    /// Attempts to enqueue; returns `Err(value)` when full (or when an
    /// attached fault plan stalls the handshake this cycle).
    pub fn push(&mut self, value: T) -> Result<(), T> {
        if self.is_full() {
            return Err(value);
        }
        if let Some(plan) = &mut self.fault {
            if plan.stall_elastic() {
                return Err(value);
            }
        }
        self.items.push_back(value);
        Ok(())
    }

    /// Dequeues the oldest element.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Peeks at the oldest element.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Mutable access to the *newest* element. This is in-place mutation
    /// of an already-transferred item, not a handshake — it bypasses the
    /// capacity/fault gates by design (used by virtual-port coalescing to
    /// widen the newest queued cache request).
    pub fn back_mut(&mut self) -> Option<&mut T> {
        self.items.back_mut()
    }

    /// `true` when no further `push` can succeed this cycle.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Maximum occupancy.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Remaining free slots.
    pub fn space(&self) -> usize {
        self.capacity - self.items.len()
    }

    /// Iterates over queued elements from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Removes and yields the `n` oldest elements in one slice-based
    /// transfer — the batched form of `n` `pop` calls. The handshake is
    /// the *push* side; draining is always ready, so no fault gate
    /// applies here.
    ///
    /// # Panics
    /// Panics if `n` exceeds the current occupancy.
    pub fn drain_front(&mut self, n: usize) -> impl Iterator<Item = T> + '_ {
        self.items.drain(..n)
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Decisions drawn from the attached fault plan so far (0 when no plan
    /// is attached) — input to the per-site determinism audit.
    pub fn fault_draws(&self) -> u64 {
        self.fault.as_ref().map_or(0, FaultPlan::draws)
    }
}

impl<T: Snap> Queue<T> {
    /// Appends the queue's contents and fault-plan position. Capacity is
    /// construction state and is not serialized.
    pub fn save_state(&self, w: &mut Writer) {
        self.items.save(w);
        self.fault.save(w);
    }

    /// Restores contents and fault-plan position in place. The queue keeps
    /// its configured capacity; a payload holding more elements than fit is
    /// a [`SnapError::BadValue`]. Elements load into the existing backing
    /// buffer (reserved to `capacity` at construction), so a restored
    /// queue stays allocation-free exactly like a freshly built one.
    pub fn restore_state(&mut self, r: &mut Reader<'_>) -> SnapResult<()> {
        let n = r.len(1)?;
        if n > self.capacity {
            return Err(SnapError::BadValue("queue occupancy"));
        }
        self.items.clear();
        for _ in 0..n {
            self.items.push_back(T::load(r)?);
        }
        self.fault = Option::<FaultPlan>::load(r)?;
        Ok(())
    }
}

/// A single-entry pipeline register with elastic semantics: a stage that
/// holds at most one transaction.
#[derive(Debug, Clone, Default)]
pub struct Slot<T> {
    value: Option<T>,
}

impl<T> Slot<T> {
    /// Creates an empty slot.
    pub fn new() -> Self {
        Self { value: None }
    }

    /// Attempts to fill the slot; returns `Err(value)` if occupied.
    pub fn push(&mut self, value: T) -> Result<(), T> {
        if self.value.is_some() {
            Err(value)
        } else {
            self.value = Some(value);
            Ok(())
        }
    }

    /// Takes the held transaction, emptying the slot.
    pub fn take(&mut self) -> Option<T> {
        self.value.take()
    }

    /// Peeks at the held transaction.
    pub fn peek(&self) -> Option<&T> {
        self.value.as_ref()
    }

    /// `true` when occupied.
    pub fn is_full(&self) -> bool {
        self.value.is_some()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_backpressures_when_full() {
        let mut q = Queue::new(2);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert!(q.push(3).is_ok());
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn queue_is_fifo() {
        let mut q = Queue::new(4);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = Queue::<u32>::new(0);
    }

    #[test]
    fn fault_gate_refuses_pushes_without_losing_data() {
        use vortex_faults::FaultConfig;
        let cfg = FaultConfig { seed: 1, elastic_stall: 500, ..FaultConfig::off() };
        let mut q = Queue::new(4);
        q.set_fault(cfg.plan(0));
        let mut accepted = 0;
        let mut refused = 0;
        for i in 0..256 {
            match q.push(i) {
                Ok(()) => accepted += 1,
                Err(v) => {
                    assert_eq!(v, i, "refused push must hand the value back");
                    refused += 1;
                }
            }
            q.pop();
        }
        assert!(accepted > 0 && refused > 0, "50% gate must both pass and stall");
    }

    #[test]
    fn slot_holds_one() {
        let mut s = Slot::new();
        assert!(s.push(7).is_ok());
        assert_eq!(s.push(8), Err(8));
        assert_eq!(s.peek(), Some(&7));
        assert_eq!(s.take(), Some(7));
        assert!(s.is_empty());
    }
}
