//! Memory request/response transaction types.

/// A transaction tag, carried unchanged from request to response.
///
/// Mirrors the paper's elastic-pipeline tags (§4.4): *"requests are assigned
/// tags, which consist of the instruction PC and wavefront identifier that
/// track the life cycle of instructions"*. The simulator packs an arbitrary
/// 64-bit id; the core encodes `(wavefront, pc, slot)` into it and the trace
/// infrastructure decodes it back.
pub type Tag = u64;

/// A timing-model memory request (no data payload — see the crate docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemReq {
    /// Requester-chosen tag returned on the response.
    pub tag: Tag,
    /// Byte address of the access.
    pub addr: u32,
    /// `true` for stores.
    pub write: bool,
}

impl MemReq {
    /// Convenience constructor for a read.
    pub fn read(tag: Tag, addr: u32) -> Self {
        Self {
            tag,
            addr,
            write: false,
        }
    }

    /// Convenience constructor for a write.
    pub fn write(tag: Tag, addr: u32) -> Self {
        Self {
            tag,
            addr,
            write: true,
        }
    }

    /// The cache-line address for `line_bytes`-sized lines.
    pub fn line_addr(&self, line_bytes: u32) -> u32 {
        self.addr / line_bytes
    }
}

/// A timing-model memory response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRsp {
    /// The tag of the originating request.
    pub tag: Tag,
}

impl vortex_snapshot::Snap for MemReq {
    fn save(&self, w: &mut vortex_snapshot::Writer) {
        w.u64(self.tag);
        w.u32(self.addr);
        w.bool(self.write);
    }
    fn load(r: &mut vortex_snapshot::Reader<'_>) -> vortex_snapshot::SnapResult<Self> {
        Ok(Self {
            tag: r.u64()?,
            addr: r.u32()?,
            write: r.bool()?,
        })
    }
}

impl vortex_snapshot::Snap for MemRsp {
    fn save(&self, w: &mut vortex_snapshot::Writer) {
        w.u64(self.tag);
    }
    fn load(r: &mut vortex_snapshot::Reader<'_>) -> vortex_snapshot::SnapResult<Self> {
        Ok(Self { tag: r.u64()? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_addr_strips_offset_bits() {
        let r = MemReq::read(1, 0x1234);
        assert_eq!(r.line_addr(64), 0x1234 / 64);
        assert_eq!(r.line_addr(16), 0x1234 / 16);
        assert!(!r.write);
        assert!(MemReq::write(1, 0).write);
    }
}
