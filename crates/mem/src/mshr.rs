//! Miss-status holding registers (MSHR).
//!
//! Each cache bank owns a private MSHR (paper §4.3: *"Each bank maintains
//! its own miss status holding register (MSHR) to reduce miss rate, a
//! solution adapted from [Asiatici & Ienne, FPGA'19]"*). The MSHR tracks
//! outstanding line fills and merges secondary misses to the same line so a
//! single memory request serves many core requests. Capacity is counted in
//! pending *core requests*, matching the RTL's `MSHR_SIZE` parameter; the
//! bank consults [`Mshr::has_space`] *before* admitting a request into its
//! pipeline — the paper's "early full signal" that prevents the
//! MSHR-full deadlock.

use crate::cache::BankReq;
use std::collections::VecDeque;

/// One bank's MSHR.
#[derive(Debug)]
pub struct Mshr {
    /// Outstanding fills: (line address, requests waiting on the line).
    /// A `VecDeque` keeps fill-allocation order for deterministic replay.
    entries: VecDeque<(u32, Vec<BankReq>)>,
    /// Total pending core requests across entries.
    pending: usize,
    capacity: usize,
}

impl Mshr {
    /// Creates an MSHR holding at most `capacity` pending requests.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be non-zero");
        Self {
            // At most one entry per pending request, so this reservation
            // keeps allocation out of the steady state entirely.
            entries: VecDeque::with_capacity(capacity),
            pending: 0,
            capacity,
        }
    }

    /// `true` if one more request can be admitted (the early-full check).
    pub fn has_space(&self) -> bool {
        self.pending < self.capacity
    }

    /// Free request slots remaining.
    pub fn space(&self) -> usize {
        self.capacity - self.pending
    }

    /// `true` if a fill for `line` is already outstanding (a secondary miss
    /// would *merge*, needing no new memory request).
    pub fn has_line(&self, line: u32) -> bool {
        self.entries.iter().any(|(l, _)| *l == line)
    }

    /// Records a miss. Returns `true` if this allocated a *new* entry (a
    /// memory fill request must be issued), `false` if it merged into an
    /// existing one.
    ///
    /// # Panics
    /// Panics if the MSHR is full — callers must check [`Mshr::has_space`].
    pub fn allocate(&mut self, line: u32, req: BankReq) -> bool {
        assert!(self.has_space(), "MSHR overflow: early-full check violated");
        self.pending += 1;
        if let Some((_, reqs)) = self.entries.iter_mut().find(|(l, _)| *l == line) {
            reqs.push(req);
            false
        } else {
            self.entries.push_back((line, vec![req]));
            true
        }
    }

    /// Releases every request waiting on `line` (called when its fill
    /// arrives). Returns the requests in allocation order.
    pub fn release(&mut self, line: u32) -> Vec<BankReq> {
        if let Some(pos) = self.entries.iter().position(|(l, _)| *l == line) {
            let (_, reqs) = self.entries.remove(pos).expect("position just found");
            self.pending -= reqs.len();
            reqs
        } else {
            Vec::new()
        }
    }

    /// Number of pending core requests.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Number of distinct outstanding line fills.
    pub fn outstanding_lines(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends the outstanding fills. Capacity is construction state and
    /// is not serialized; `pending` is recomputed on restore.
    pub fn save_state(&self, w: &mut vortex_snapshot::Writer) {
        use vortex_snapshot::Snap;
        self.entries.save(w);
    }

    /// Restores the outstanding fills in place, recomputing the pending
    /// count. A payload exceeding the configured capacity is a
    /// [`vortex_snapshot::SnapError::BadValue`].
    pub fn restore_state(
        &mut self,
        r: &mut vortex_snapshot::Reader<'_>,
    ) -> vortex_snapshot::SnapResult<()> {
        use vortex_snapshot::Snap;
        let n = r.len(5)?;
        self.entries.clear();
        let mut pending = 0usize;
        for _ in 0..n {
            let entry = <(u32, Vec<BankReq>)>::load(r)?;
            pending += entry.1.len();
            // Loading into the existing backing buffer (reserved to
            // `capacity` at construction) keeps a restored MSHR as
            // allocation-free as a freshly built one.
            self.entries.push_back(entry);
        }
        if pending > self.capacity {
            return Err(vortex_snapshot::SnapError::BadValue("mshr occupancy"));
        }
        self.pending = pending;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{BankReq, SubReq};

    fn req(tag: u64) -> BankReq {
        BankReq {
            line: 0,
            write: false,
            subs: vec![SubReq { tag }],
        }
    }

    #[test]
    fn first_miss_allocates_secondary_merges() {
        let mut m = Mshr::new(4);
        assert!(m.allocate(10, req(1)), "primary miss needs a fill");
        assert!(!m.allocate(10, req(2)), "secondary miss merges");
        assert!(m.allocate(11, req(3)), "different line needs its own fill");
        assert_eq!(m.pending(), 3);
        assert_eq!(m.outstanding_lines(), 2);
    }

    #[test]
    fn release_returns_requests_in_order() {
        let mut m = Mshr::new(4);
        m.allocate(10, req(1));
        m.allocate(10, req(2));
        let released = m.release(10);
        assert_eq!(released.len(), 2);
        assert_eq!(released[0].subs[0].tag, 1);
        assert_eq!(released[1].subs[0].tag, 2);
        assert!(m.is_empty());
        assert_eq!(m.pending(), 0);
    }

    #[test]
    fn release_unknown_line_is_empty() {
        let mut m = Mshr::new(2);
        assert!(m.release(99).is_empty());
    }

    #[test]
    fn capacity_counts_requests_not_lines() {
        let mut m = Mshr::new(2);
        m.allocate(10, req(1));
        m.allocate(10, req(2));
        assert!(!m.has_space(), "two merged requests fill a 2-entry MSHR");
    }

    #[test]
    #[should_panic(expected = "early-full")]
    fn overflow_panics() {
        let mut m = Mshr::new(1);
        m.allocate(1, req(1));
        m.allocate(2, req(2));
    }
}
