//! Banked shared-memory scratchpad.
//!
//! The paper (§4.1.4): *"An optional shared memory is also available that
//! can act as scratchpad memory or a stack depending on the application."*
//! The scratchpad is word-banked (bank = word address % banks), one access
//! per bank per cycle, fixed single-cycle latency — so the only timing
//! effect is bank conflicts between the lanes of a wavefront, as on real
//! GPUs.

use crate::req::{MemReq, MemRsp};
use std::collections::VecDeque;

/// Shared-memory geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedMemConfig {
    /// Capacity in bytes.
    pub size_bytes: u32,
    /// Word-interleaved banks.
    pub num_banks: usize,
    /// Access latency in cycles (≥ 1).
    pub latency: u32,
}

impl Default for SharedMemConfig {
    /// The baseline 8 KiB scratchpad with one bank per thread lane.
    fn default() -> Self {
        Self {
            size_bytes: 8 * 1024,
            num_banks: 4,
            latency: 1,
        }
    }
}

/// Shared-memory timing model (values live in the core's functional state).
#[derive(Debug)]
pub struct SharedMem {
    config: SharedMemConfig,
    /// In-flight accesses: (ready cycle, response).
    in_flight: VecDeque<(u64, MemRsp)>,
    /// Per-bank claim flags, reused across [`SharedMem::offer`] calls so
    /// the per-cycle path does not allocate.
    bank_used: Vec<bool>,
    cycle: u64,
    /// Accesses accepted.
    pub accesses: u64,
    /// Requests deferred by a bank conflict.
    pub bank_conflicts: u64,
}

impl SharedMem {
    /// Creates the scratchpad model.
    ///
    /// # Panics
    /// Panics if `latency == 0` or `num_banks == 0`.
    pub fn new(config: SharedMemConfig) -> Self {
        assert!(config.latency >= 1, "latency must be at least one cycle");
        assert!(config.num_banks >= 1, "need at least one bank");
        Self {
            config,
            in_flight: VecDeque::new(),
            bank_used: vec![false; config.num_banks],
            cycle: 0,
            accesses: 0,
            bank_conflicts: 0,
        }
    }

    /// Offers one wavefront's lane accesses for this cycle. Accepts at most
    /// one access per bank, removing accepted requests from `reqs`; the
    /// rest must be re-offered next cycle (conflict serialization).
    pub fn offer(&mut self, reqs: &mut Vec<MemReq>) -> usize {
        self.bank_used.fill(false);
        let mut accepted = 0;
        let mut i = 0;
        while i < reqs.len() {
            let bank = ((reqs[i].addr / 4) as usize) % self.config.num_banks;
            if self.bank_used[bank] {
                self.bank_conflicts += 1;
                i += 1;
                continue;
            }
            self.bank_used[bank] = true;
            let req = reqs.remove(i);
            self.accesses += 1;
            if !req.write {
                self.in_flight.push_back((
                    self.cycle + u64::from(self.config.latency),
                    MemRsp { tag: req.tag },
                ));
            }
            accepted += 1;
        }
        accepted
    }

    /// Advances one cycle.
    pub fn tick(&mut self) {
        self.cycle += 1;
    }

    /// Pops one completed read response.
    pub fn pop_rsp(&mut self) -> Option<MemRsp> {
        match self.in_flight.front() {
            Some(&(ready, rsp)) if ready <= self.cycle => {
                self.in_flight.pop_front();
                Some(rsp)
            }
            _ => None,
        }
    }

    /// `true` when nothing is in flight.
    pub fn is_idle(&self) -> bool {
        self.in_flight.is_empty()
    }

    /// The `ready` stamp of the oldest in-flight response, if any. The
    /// core turns this into an event horizon: its tick advances the
    /// scratchpad clock before draining responses, so the oldest one
    /// pops during the tick that starts at `ready - 1`.
    pub fn front_ready(&self) -> Option<u64> {
        self.in_flight.front().map(|&(ready, _)| ready)
    }

    /// Advances the scratchpad clock by `delta` cycles at once — the
    /// bulk equivalent of `delta` [`SharedMem::tick`] calls.
    pub fn advance(&mut self, delta: u64) {
        self.cycle += delta;
    }

    /// The configured geometry.
    pub fn config(&self) -> SharedMemConfig {
        self.config
    }

    /// Appends the scratchpad's timing state (the per-cycle bank-claim
    /// scratch is rebuilt every [`SharedMem::offer`] and is not saved).
    pub fn save_state(&self, w: &mut vortex_snapshot::Writer) {
        use vortex_snapshot::Snap;
        self.in_flight.save(w);
        w.u64(self.cycle);
        w.u64(self.accesses);
        w.u64(self.bank_conflicts);
    }

    /// Restores the scratchpad in place.
    pub fn restore_state(
        &mut self,
        r: &mut vortex_snapshot::Reader<'_>,
    ) -> vortex_snapshot::SnapResult<()> {
        use vortex_snapshot::Snap;
        self.in_flight = VecDeque::load(r)?;
        self.cycle = r.u64()?;
        self.accesses = r.u64()?;
        self.bank_conflicts = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_free_accesses_all_accept() {
        let mut s = SharedMem::new(SharedMemConfig::default());
        // 4 lanes hitting 4 different banks.
        let mut reqs: Vec<MemReq> = (0..4).map(|i| MemReq::read(i, i as u32 * 4)).collect();
        assert_eq!(s.offer(&mut reqs), 4);
        assert!(reqs.is_empty());
        s.tick();
        let mut got: Vec<_> = std::iter::from_fn(|| s.pop_rsp()).map(|r| r.tag).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert_eq!(s.bank_conflicts, 0);
    }

    #[test]
    fn same_bank_accesses_serialize() {
        let mut s = SharedMem::new(SharedMemConfig::default());
        // 4 lanes hitting the same bank (stride = num_banks words).
        let mut reqs: Vec<MemReq> = (0..4).map(|i| MemReq::read(i, i as u32 * 16)).collect();
        assert_eq!(s.offer(&mut reqs), 1);
        assert_eq!(reqs.len(), 3);
        assert_eq!(s.bank_conflicts, 3);
        s.tick();
        assert_eq!(s.offer(&mut reqs), 1);
    }

    #[test]
    fn writes_need_no_response() {
        let mut s = SharedMem::new(SharedMemConfig::default());
        let mut reqs = vec![MemReq::write(9, 0)];
        s.offer(&mut reqs);
        s.tick();
        assert!(s.pop_rsp().is_none());
        assert!(s.is_idle());
    }
}
