//! DRAM timing model.
//!
//! Models the FPGA's on-board memory as a set of independent channels
//! (2 DDR4 banks on the Arria 10 board, 8 on the Stratix 10 — paper §6.5)
//! with a fixed access latency. Each channel accepts at most one request per
//! cycle, so `channels` is the bandwidth knob and `latency` the latency knob
//! — exactly the two axes swept by the paper's Figure 21 memory-scaling
//! experiment.

use crate::elastic::Queue;
use crate::req::{MemReq, MemRsp};
use std::collections::VecDeque;
use vortex_faults::FaultPlan;

/// DRAM model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Access latency in core cycles.
    pub latency: u32,
    /// Independent channels (requests accepted per cycle).
    pub channels: u32,
    /// Depth of the request input queue.
    pub queue_size: usize,
}

impl Default for DramConfig {
    /// The paper's baseline: 100-cycle latency, 2 channels (Arria 10).
    fn default() -> Self {
        Self {
            latency: 100,
            channels: 2,
            queue_size: 16,
        }
    }
}

/// The DRAM device: bounded input queue → per-channel service → responses.
#[derive(Debug)]
pub struct Dram {
    config: DramConfig,
    input: Queue<MemReq>,
    /// In-flight requests: (completion cycle, request).
    in_flight: VecDeque<(u64, MemReq)>,
    responses: VecDeque<MemRsp>,
    cycle: u64,
    fault: Option<FaultPlan>,
    /// Total requests serviced (reads + writes).
    pub total_reads: u64,
    /// Total writes serviced.
    pub total_writes: u64,
    /// Read responses deliberately dropped by fault injection.
    pub dropped_rsps: u64,
}

impl Dram {
    /// Creates a DRAM with the given parameters.
    pub fn new(config: DramConfig) -> Self {
        Self {
            config,
            input: Queue::new(config.queue_size),
            in_flight: VecDeque::new(),
            responses: VecDeque::new(),
            cycle: 0,
            fault: None,
            total_reads: 0,
            total_writes: 0,
            dropped_rsps: 0,
        }
    }

    /// Attaches a fault plan: the controller may skip servicing its input
    /// queue (`dram_stall`), add latency to individual accesses
    /// (`dram_delay`), or drop read responses outright (`dram_drop`). The
    /// input queue's elastic handshake also stalls at the plan's
    /// `elastic_stall` rate.
    pub fn set_fault(&mut self, plan: FaultPlan) {
        self.input.set_fault(plan.clone());
        self.fault = Some(plan);
    }

    /// Detaches the controller's and its input queue's fault plans.
    pub fn clear_fault(&mut self) {
        self.input.clear_fault();
        self.fault = None;
    }

    /// Decisions drawn from the controller's fault plan plus its input
    /// queue's handshake plan — input to the per-site determinism audit.
    pub fn fault_draws(&self) -> u64 {
        self.fault.as_ref().map_or(0, FaultPlan::draws) + self.input.fault_draws()
    }

    /// Attempts to enqueue a request; fails (backpressure) when the input
    /// queue is full.
    pub fn push_req(&mut self, req: MemReq) -> Result<(), MemReq> {
        self.input.push(req)
    }

    /// `true` if at least one more request can be pushed this cycle.
    pub fn can_accept(&self) -> bool {
        !self.input.is_full()
    }

    /// Free input-queue slots. With no fault plan attached this many
    /// pushes are guaranteed to succeed back to back, so callers can
    /// batch-drain upstream queues without per-request handshakes.
    pub fn space(&self) -> usize {
        self.input.space()
    }

    /// Advances one cycle: starts up to `channels` queued requests and
    /// retires the ones whose latency elapsed (reads produce responses;
    /// writes complete silently).
    pub fn tick(&mut self) {
        self.cycle += 1;
        if let Some(plan) = &mut self.fault {
            if plan.stall_dram() {
                // The controller skips its input queue this cycle; in-flight
                // accesses still retire below.
                return self.retire();
            }
        }
        for _ in 0..self.config.channels {
            let Some(req) = self.input.pop() else { break };
            if req.write {
                self.total_writes += 1;
            } else {
                self.total_reads += 1;
            }
            let mut latency = u64::from(self.config.latency);
            if let Some(plan) = &mut self.fault {
                latency += u64::from(plan.dram_delay());
            }
            self.in_flight.push_back((self.cycle + latency, req));
        }
        self.retire();
    }

    /// Retires in-flight accesses whose (possibly fault-extended) latency
    /// elapsed. Retirement is in issue order, so one delayed access also
    /// holds back the accesses behind it — matching an in-order controller.
    fn retire(&mut self) {
        while let Some(&(done, req)) = self.in_flight.front() {
            if done > self.cycle {
                break;
            }
            self.in_flight.pop_front();
            if !req.write {
                let dropped = match &mut self.fault {
                    Some(plan) => plan.drop_dram_rsp(),
                    None => false,
                };
                if dropped {
                    self.dropped_rsps += 1;
                } else {
                    self.responses.push_back(MemRsp { tag: req.tag });
                }
            }
        }
    }

    /// Drains one completed read response.
    pub fn pop_rsp(&mut self) -> Option<MemRsp> {
        self.responses.pop_front()
    }

    /// `true` when no request is queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.input.is_empty() && self.in_flight.is_empty() && self.responses.is_empty()
    }

    /// `true` while a fault plan is attached. The plan draws a
    /// `stall_dram` decision on every tick, so a fault-armed controller
    /// is never fast-forward idle (the draw audit chain must advance
    /// cycle by cycle).
    pub fn has_fault(&self) -> bool {
        self.fault.is_some()
    }

    /// The earliest cycle whose tick would do more than advance the
    /// clock. With queued input, pending responses, or a fault plan
    /// attached that is the current cycle; with only in-flight accesses
    /// it is the tick on which the oldest one retires (`tick` increments
    /// the clock before retiring, so that is `done - 1`); when fully
    /// idle, `u64::MAX`.
    pub fn next_event_cycle(&self) -> u64 {
        if self.fault.is_some() || !self.input.is_empty() || !self.responses.is_empty() {
            return self.cycle;
        }
        match self.in_flight.front() {
            Some(&(done, _)) => done.saturating_sub(1).max(self.cycle),
            None => u64::MAX,
        }
    }

    /// Advances the clock by `delta` cycles at once — the bulk
    /// equivalent of `delta` [`Dram::tick`] calls on a controller whose
    /// ticks are certified idle (empty input, no retirement due, no
    /// fault plan) for the whole span.
    pub fn advance(&mut self, delta: u64) {
        self.cycle += delta;
    }

    /// The configured parameters.
    pub fn config(&self) -> DramConfig {
        self.config
    }

    /// Queue depths for hang diagnosis: (input, in-flight, responses).
    pub fn occupancy(&self) -> (usize, usize, usize) {
        (self.input.len(), self.in_flight.len(), self.responses.len())
    }

    /// Appends the controller's full state, including both fault-plan
    /// copies ([`Dram::set_fault`] clones the plan into the input queue's
    /// handshake, so the two streams advance independently).
    pub fn save_state(&self, w: &mut vortex_snapshot::Writer) {
        use vortex_snapshot::Snap;
        self.input.save_state(w);
        self.in_flight.save(w);
        self.responses.save(w);
        w.u64(self.cycle);
        self.fault.save(w);
        w.u64(self.total_reads);
        w.u64(self.total_writes);
        w.u64(self.dropped_rsps);
    }

    /// Restores the controller in place.
    pub fn restore_state(
        &mut self,
        r: &mut vortex_snapshot::Reader<'_>,
    ) -> vortex_snapshot::SnapResult<()> {
        use vortex_snapshot::Snap;
        self.input.restore_state(r)?;
        self.in_flight = VecDeque::load(r)?;
        self.responses = VecDeque::load(r)?;
        self.cycle = r.u64()?;
        self.fault = Option::load(r)?;
        self.total_reads = r.u64()?;
        self.total_writes = r.u64()?;
        self.dropped_rsps = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_completes_after_latency() {
        let mut d = Dram::new(DramConfig {
            latency: 5,
            channels: 1,
            queue_size: 4,
        });
        d.push_req(MemReq::read(42, 0x100)).unwrap();
        for _ in 0..5 {
            d.tick();
            assert!(d.pop_rsp().is_none());
        }
        d.tick();
        assert_eq!(d.pop_rsp(), Some(MemRsp { tag: 42 }));
        assert!(d.is_idle());
    }

    #[test]
    fn writes_complete_silently() {
        let mut d = Dram::new(DramConfig {
            latency: 2,
            channels: 1,
            queue_size: 4,
        });
        d.push_req(MemReq::write(7, 0)).unwrap();
        for _ in 0..10 {
            d.tick();
        }
        assert!(d.pop_rsp().is_none());
        assert!(d.is_idle());
        assert_eq!(d.total_writes, 1);
    }

    #[test]
    fn channel_count_bounds_throughput() {
        // 8 reads through 2 channels at latency 3: last pair starts at
        // cycle 4 and completes at cycle 7.
        let mut d = Dram::new(DramConfig {
            latency: 3,
            channels: 2,
            queue_size: 8,
        });
        for i in 0..8 {
            d.push_req(MemReq::read(i, i as u32 * 64)).unwrap();
        }
        let mut completed = 0;
        let mut cycles = 0;
        while completed < 8 {
            d.tick();
            cycles += 1;
            while d.pop_rsp().is_some() {
                completed += 1;
            }
            assert!(cycles < 100, "throughput stuck");
        }
        assert_eq!(cycles, 7);
    }

    #[test]
    fn input_queue_backpressures() {
        let mut d = Dram::new(DramConfig {
            latency: 1,
            channels: 1,
            queue_size: 2,
        });
        assert!(d.push_req(MemReq::read(0, 0)).is_ok());
        assert!(d.push_req(MemReq::read(1, 0)).is_ok());
        assert!(!d.can_accept());
        assert!(d.push_req(MemReq::read(2, 0)).is_err());
    }
}
