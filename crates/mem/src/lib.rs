//! # vortex-mem
//!
//! The Vortex memory subsystem (paper §4.1.4 and §4.3): a functional flat
//! [RAM](ram::Ram) plus a cycle-level timing model of the high-bandwidth
//! non-blocking cache hierarchy:
//!
//! * [`cache::Cache`] — the multi-banked, non-blocking, pipelined cache of
//!   Figure 6: bank selector (with the virtual-port coalescing of
//!   Algorithm 2), per-bank four-stage pipelines (schedule → tag → data →
//!   response), per-bank [MSHRs](mshr), and the bank merger at the back-end.
//! * [`dram::Dram`] — a latency + channel-bandwidth model of the FPGA's
//!   on-board memory (2 banks on Arria 10, 8 on Stratix 10).
//! * [`hierarchy::MemHierarchy`] — composes per-core L1s with optional
//!   shared L2/L3 levels above the DRAM, routing responses back to their
//!   requesters.
//! * [`smem::SharedMem`] — the banked shared-memory scratchpad.
//!
//! ### Modelling approach
//!
//! Like the paper's own SIMX driver, the simulator is *functional-first*:
//! data values live in [`ram::Ram`] and are read/written by the core at
//! issue time, while this crate models *when* each access completes —
//! bank conflicts, misses, MSHR occupancy, memory bandwidth. Cache
//! structures therefore track tags and timing only, never data, which keeps
//! the timing model independent from the functional state (and matches how
//! the paper reports cache behaviour: bank utilization and IPC, Figure 19).
//!
//! All inter-component links are [`elastic`] ready/valid queues, mirroring
//! the paper's elastic-pipeline design discipline (§4.4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod dram;
pub mod elastic;
pub mod hierarchy;
pub mod mshr;
pub mod ram;
pub mod req;
pub mod shadow;
pub mod smem;

pub use cache::{Cache, CacheConfig, CacheOccupancy, CacheStats};
pub use dram::{Dram, DramConfig};
pub use hierarchy::{ClusterShard, HierarchyConfig, HierarchyOccupancy, MemHierarchy};
pub use ram::Ram;
pub use req::{MemReq, MemRsp, Tag};
pub use shadow::{RamView, WriteLog};
pub use smem::{SharedMem, SharedMemConfig};
