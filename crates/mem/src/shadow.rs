//! Deferred stores for the two-phase commit protocol.
//!
//! The parallel simulator ticks every core's *compute phase* against a
//! shared read-snapshot of [`Ram`], so nothing may mutate memory while the
//! phase runs. Stores are therefore buffered in a per-core [`WriteLog`] and
//! applied during the serial *commit phase*, in fixed core-id order. A
//! [`RamView`] bundles the snapshot with a core's log and presents the same
//! read/write accessors as `Ram` itself, with one crucial property: reads
//! see the core's *own* pending stores byte-accurately (read-your-write
//! within the cycle), exactly matching the old eager-store semantics for a
//! single core — including self-modifying code that fetches a word it just
//! stored.
//!
//! The snapshot is shared by reference (the page directory is *not* cloned):
//! the compute phase holds the one true `Ram` behind a read lock, which
//! costs nothing per access and keeps resident pages shared across all
//! worker threads.

use crate::ram::Ram;

/// One buffered store: up to four bytes at `addr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PendingStore {
    addr: u32,
    value: u32,
    /// Store width in bytes: 1, 2 or 4.
    width: u8,
}

/// A per-core buffer of stores awaiting the commit phase.
///
/// Entries are applied to [`Ram`] in program order by [`WriteLog::apply`];
/// until then, the read helpers overlay pending bytes on top of a base
/// snapshot so the owning core observes its own stores immediately.
#[derive(Debug, Default)]
pub struct WriteLog {
    entries: Vec<PendingStore>,
}

impl WriteLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` when no stores are pending (the read fast path).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of pending stores.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Buffers a byte store.
    pub fn push_u8(&mut self, addr: u32, value: u8) {
        self.entries.push(PendingStore {
            addr,
            value: value as u32,
            width: 1,
        });
    }

    /// Buffers a halfword store.
    pub fn push_u16(&mut self, addr: u32, value: u16) {
        self.entries.push(PendingStore {
            addr,
            value: value as u32,
            width: 2,
        });
    }

    /// Buffers a word store.
    pub fn push_u32(&mut self, addr: u32, value: u32) {
        self.entries.push(PendingStore {
            addr,
            value,
            width: 4,
        });
    }

    /// Overlays pending bytes in `[addr, addr + out.len())` onto `out`,
    /// later stores winning. `out` must already hold the base snapshot's
    /// bytes for that range.
    fn overlay(&self, addr: u32, out: &mut [u8]) {
        for e in &self.entries {
            let bytes = e.value.to_le_bytes();
            for (i, b) in bytes.iter().take(e.width as usize).enumerate() {
                // Wrapping distance: bytes below `addr` wrap to huge
                // offsets and fail the bounds check.
                let rel = e.addr.wrapping_add(i as u32).wrapping_sub(addr) as usize;
                if rel < out.len() {
                    out[rel] = *b;
                }
            }
        }
    }

    /// Reads a byte through the log.
    pub fn read_u8(&self, base: &Ram, addr: u32) -> u8 {
        if self.entries.is_empty() {
            return base.read_u8(addr);
        }
        let mut buf = [base.read_u8(addr)];
        self.overlay(addr, &mut buf);
        buf[0]
    }

    /// Reads a little-endian u16 through the log.
    pub fn read_u16(&self, base: &Ram, addr: u32) -> u16 {
        if self.entries.is_empty() {
            return base.read_u16(addr);
        }
        let mut buf = base.read_u16(addr).to_le_bytes();
        self.overlay(addr, &mut buf);
        u16::from_le_bytes(buf)
    }

    /// Reads a little-endian u32 through the log.
    pub fn read_u32(&self, base: &Ram, addr: u32) -> u32 {
        if self.entries.is_empty() {
            return base.read_u32(addr);
        }
        let mut buf = base.read_u32(addr).to_le_bytes();
        self.overlay(addr, &mut buf);
        u32::from_le_bytes(buf)
    }

    /// Applies every pending store to `ram` in program order and clears the
    /// log, keeping its allocation for the next cycle.
    pub fn apply(&mut self, ram: &mut Ram) {
        for e in self.entries.drain(..) {
            match e.width {
                1 => ram.write_u8(e.addr, e.value as u8),
                2 => ram.write_u16(e.addr, e.value as u16),
                _ => ram.write_u32(e.addr, e.value),
            }
        }
    }

    /// Discards all pending stores (used when a cycle aborts on error).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Appends the pending stores in program order. Checkpoints are taken
    /// between cycles (after commit), so this is normally empty, but the
    /// format carries it for completeness.
    pub fn save_state(&self, w: &mut vortex_snapshot::Writer) {
        use vortex_snapshot::Snap;
        self.entries.save(w);
    }

    /// Restores the pending stores in place.
    pub fn restore_state(
        &mut self,
        r: &mut vortex_snapshot::Reader<'_>,
    ) -> vortex_snapshot::SnapResult<()> {
        use vortex_snapshot::Snap;
        self.entries = Vec::load(r)?;
        Ok(())
    }
}

impl vortex_snapshot::Snap for PendingStore {
    fn save(&self, w: &mut vortex_snapshot::Writer) {
        w.u32(self.addr);
        w.u32(self.value);
        w.u8(self.width);
    }
    fn load(r: &mut vortex_snapshot::Reader<'_>) -> vortex_snapshot::SnapResult<Self> {
        let (addr, value, width) = (r.u32()?, r.u32()?, r.u8()?);
        if !matches!(width, 1 | 2 | 4) {
            return Err(vortex_snapshot::SnapError::BadValue("store width"));
        }
        Ok(Self { addr, value, width })
    }
}

/// A [`Ram`] snapshot plus one core's [`WriteLog`], presenting `Ram`'s
/// accessor surface. Writes go to the log; reads come from the snapshot
/// patched with the log. This is what the execute stage runs against during
/// the compute phase.
#[derive(Debug)]
pub struct RamView<'a> {
    base: &'a Ram,
    log: &'a mut WriteLog,
}

impl<'a> RamView<'a> {
    /// Wraps a snapshot and a write log.
    pub fn new(base: &'a Ram, log: &'a mut WriteLog) -> Self {
        Self { base, log }
    }

    /// The underlying snapshot (for read-only consumers like the texture
    /// unit, which never races a same-cycle store from its own core).
    pub fn base(&self) -> &'a Ram {
        self.base
    }

    /// Reads one byte (own pending stores visible).
    pub fn read_u8(&self, addr: u32) -> u8 {
        self.log.read_u8(self.base, addr)
    }

    /// Reads a little-endian u16 (own pending stores visible).
    pub fn read_u16(&self, addr: u32) -> u16 {
        self.log.read_u16(self.base, addr)
    }

    /// Reads a little-endian u32 (own pending stores visible).
    pub fn read_u32(&self, addr: u32) -> u32 {
        self.log.read_u32(self.base, addr)
    }

    /// Reads an IEEE-754 single (own pending stores visible).
    pub fn read_f32(&self, addr: u32) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Buffers a byte store.
    pub fn write_u8(&mut self, addr: u32, value: u8) {
        self.log.push_u8(addr, value);
    }

    /// Buffers a halfword store.
    pub fn write_u16(&mut self, addr: u32, value: u16) {
        self.log.push_u16(addr, value);
    }

    /// Buffers a word store.
    pub fn write_u32(&mut self, addr: u32, value: u32) {
        self.log.push_u32(addr, value);
    }

    /// Buffers an IEEE-754 single store.
    pub fn write_f32(&mut self, addr: u32, value: f32) {
        self.log.push_u32(addr, value.to_bits());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_pass_through_when_log_empty() {
        let mut ram = Ram::new();
        ram.write_u32(0x100, 0xDEAD_BEEF);
        let mut log = WriteLog::new();
        let view = RamView::new(&ram, &mut log);
        assert_eq!(view.read_u32(0x100), 0xDEAD_BEEF);
        assert_eq!(view.read_u8(0x100), 0xEF);
    }

    #[test]
    fn read_your_write_all_widths() {
        let ram = Ram::new();
        let mut log = WriteLog::new();
        let mut view = RamView::new(&ram, &mut log);
        view.write_u8(10, 0xAB);
        assert_eq!(view.read_u8(10), 0xAB);
        view.write_u16(100, 0x1234);
        assert_eq!(view.read_u16(100), 0x1234);
        view.write_u32(200, 0xDEAD_BEEF);
        assert_eq!(view.read_u32(200), 0xDEAD_BEEF);
        view.write_f32(300, 1.5);
        assert_eq!(view.read_f32(300), 1.5);
    }

    #[test]
    fn later_stores_win_and_partial_overlap_patches_bytes() {
        let mut ram = Ram::new();
        ram.write_u32(0x40, 0x4433_2211);
        let mut log = WriteLog::new();
        let mut view = RamView::new(&ram, &mut log);
        // Overwrite byte 1 of the word, then byte 1 again: last wins.
        view.write_u8(0x41, 0xAA);
        view.write_u8(0x41, 0xBB);
        assert_eq!(view.read_u32(0x40), 0x4433_BB11);
        // A halfword overlapping the word's top bytes.
        view.write_u16(0x42, 0xCCDD);
        assert_eq!(view.read_u32(0x40), 0xCCDD_BB11);
        // Reads below/above the patched range are untouched.
        assert_eq!(view.read_u8(0x44), 0);
    }

    #[test]
    fn apply_replays_in_program_order_then_clears() {
        let mut ram = Ram::new();
        let mut log = WriteLog::new();
        {
            let mut view = RamView::new(&ram, &mut log);
            view.write_u32(0x80, 0x1111_1111);
            view.write_u16(0x80, 0x2222);
        }
        assert_eq!(log.len(), 2);
        log.apply(&mut ram);
        assert!(log.is_empty());
        assert_eq!(ram.read_u32(0x80), 0x1111_2222);
        // The base is untouched until apply: a fresh view over an empty log
        // reads the committed value.
        let view = RamView::new(&ram, &mut log);
        assert_eq!(view.read_u32(0x80), 0x1111_2222);
    }

    #[test]
    fn clear_discards_pending_stores() {
        let ram = Ram::new();
        let mut log = WriteLog::new();
        log.push_u32(0, 42);
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.read_u32(&ram, 0), 0);
    }

    #[test]
    fn overlay_handles_stores_straddling_the_read_window() {
        let ram = Ram::new();
        let mut log = WriteLog::new();
        // A word store two bytes below the read address: only its top
        // two bytes land in the window.
        log.push_u32(0xFE, 0xAABB_CCDD);
        assert_eq!(log.read_u32(&ram, 0x100), 0x0000_AABB);
        // And one two bytes above: only its bottom two bytes land.
        log.push_u32(0x102, 0x1122_3344);
        assert_eq!(log.read_u32(&ram, 0x100), 0x3344_AABB);
    }
}
