//! Property tests for the multi-level hierarchy: liveness and exactly-once
//! response delivery under randomized multi-core traffic, across hierarchy
//! shapes (flat, L2, L2+L3).

use proptest::prelude::*;
use vortex_mem::dram::DramConfig;
use vortex_mem::hierarchy::{l2_default, l3_default, HierarchyConfig, MemHierarchy};
use vortex_mem::req::MemReq;

/// Per-core traffic: `(line, write)` pairs.
type Trace = Vec<(u32, bool)>;

fn drive(mut h: MemHierarchy, traces: Vec<Trace>) -> Result<(), String> {
    let num_cores = traces.len();
    let mut pending: Vec<Vec<MemReq>> = traces
        .iter()
        .enumerate()
        .map(|(core, t)| {
            t.iter()
                .enumerate()
                .map(|(i, &(line, write))| MemReq {
                    tag: ((core as u64) << 32) | i as u64,
                    addr: (line % 256) * 64,
                    write,
                })
                .collect()
        })
        .collect();
    let expected: Vec<usize> = pending
        .iter()
        .map(|reqs| reqs.iter().filter(|r| !r.write).count())
        .collect();
    let mut got = vec![0usize; num_cores];
    for cycle in 0..200_000u64 {
        for core in 0..num_cores {
            if let Some(req) = pending[core].first().copied() {
                if h.push_req(core, req).is_ok() {
                    pending[core].remove(0);
                }
            }
        }
        h.tick();
        for (core, g) in got.iter_mut().enumerate() {
            while let Some(rsp) = h.pop_rsp(core) {
                if (rsp.tag >> 32) as usize != core {
                    return Err(format!("response routed to the wrong core: {rsp:?}"));
                }
                *g += 1;
            }
        }
        if got == expected && pending.iter().all(Vec::is_empty) && h.is_idle() {
            return Ok(());
        }
        let _ = cycle;
    }
    Err(format!("hierarchy wedged: got {got:?}, expected {expected:?}"))
}

fn trace_strategy() -> impl Strategy<Value = Trace> {
    prop::collection::vec((0u32..32, any::<bool>()), 0..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Flat hierarchy: every read responds exactly once, to its own core.
    #[test]
    fn flat_hierarchy_is_live(traces in prop::collection::vec(trace_strategy(), 1..4)) {
        let h = MemHierarchy::new(HierarchyConfig::flat(
            traces.len(),
            DramConfig { latency: 20, channels: 2, queue_size: 8 },
        ));
        prop_assert!(drive(h, traces).is_ok());
    }

    /// L2 hierarchy, two clusters.
    #[test]
    fn l2_hierarchy_is_live(traces in prop::collection::vec(trace_strategy(), 4..5)) {
        let mut cfg = HierarchyConfig::flat(
            traces.len(),
            DramConfig { latency: 30, channels: 2, queue_size: 8 },
        );
        cfg.cores_per_cluster = 2;
        cfg.l2 = Some(l2_default());
        prop_assert!(drive(MemHierarchy::new(cfg), traces).is_ok());
    }

    /// Full three-level hierarchy.
    #[test]
    fn l3_hierarchy_is_live(traces in prop::collection::vec(trace_strategy(), 4..5)) {
        let mut cfg = HierarchyConfig::flat(
            traces.len(),
            DramConfig { latency: 50, channels: 1, queue_size: 4 },
        );
        cfg.cores_per_cluster = 2;
        cfg.l2 = Some(l2_default());
        cfg.l3 = Some(l3_default());
        prop_assert!(drive(MemHierarchy::new(cfg), traces).is_ok());
    }
}
