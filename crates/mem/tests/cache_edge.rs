//! Edge-case tests for the cache subsystem: aliasing/eviction,
//! associativity, flush under traffic, and MSHR saturation liveness.

use vortex_mem::cache::{Cache, CacheConfig};
use vortex_mem::{MemReq, MemRsp};

fn tiny(num_ways: usize, mshr: usize) -> Cache {
    Cache::new(CacheConfig {
        size_bytes: 512, // 8 lines
        line_bytes: 64,
        num_banks: 2,
        num_ways,
        ports: 1,
        mshr_size: mshr,
        input_queue: 2,
        memq_size: 4,
    })
}

/// Drives with an instant memory until `reads` responses arrive.
fn run(cache: &mut Cache, mut reqs: Vec<MemReq>, reads: usize) {
    let mut got = 0;
    for _ in 0..20_000 {
        cache.begin_cycle();
        cache.offer(&mut reqs);
        cache.tick();
        while let Some(r) = cache.pop_mem_req() {
            if !r.write {
                cache.push_mem_rsp(MemRsp { tag: r.tag });
            }
        }
        while cache.pop_rsp().is_some() {
            got += 1;
        }
        if got == reads && reqs.is_empty() && cache.is_idle() {
            return;
        }
    }
    panic!("cache wedged: {got}/{reads} responses");
}

#[test]
fn direct_mapped_aliasing_evicts() {
    let mut c = tiny(1, 8);
    // Lines 0 and 8 both map to set 0 of bank 0 (8 lines / 2 banks = 4
    // sets; line 8 % ... same set). Alternate between them.
    run(&mut c, vec![MemReq::read(1, 0)], 1);
    assert_eq!(c.stats.read_misses, 1);
    run(&mut c, vec![MemReq::read(2, 8 * 64)], 1);
    assert_eq!(c.stats.read_misses, 2, "alias misses");
    run(&mut c, vec![MemReq::read(3, 0)], 1);
    assert_eq!(c.stats.read_misses, 3, "line 0 was evicted by line 8");
}

#[test]
fn two_way_associativity_keeps_both_aliases() {
    let mut c = tiny(2, 8);
    run(&mut c, vec![MemReq::read(1, 0)], 1);
    run(&mut c, vec![MemReq::read(2, 4 * 64)], 1); // same set, way 2 (4 sets/bank... 2 sets at 2 ways)
    run(&mut c, vec![MemReq::read(3, 0)], 1);
    assert_eq!(
        c.stats.read_hits, 1,
        "2-way cache must retain the first alias"
    );
}

#[test]
fn flush_during_outstanding_traffic_is_safe() {
    let mut c = tiny(1, 8);
    // Launch a miss but delay the memory response across a flush.
    let mut reqs = vec![MemReq::read(7, 0x100)];
    c.begin_cycle();
    c.offer(&mut reqs);
    for _ in 0..4 {
        c.begin_cycle();
        c.tick();
    }
    let fill = c.pop_mem_req().expect("miss went to memory");
    c.flush();
    // Deliver the fill while flushing.
    c.push_mem_rsp(MemRsp { tag: fill.tag });
    let mut got = 0;
    for _ in 0..200 {
        c.begin_cycle();
        c.tick();
        while c.pop_rsp().is_some() {
            got += 1;
        }
    }
    assert_eq!(got, 1, "in-flight miss still completes across a flush");
    assert!(c.is_idle());
}

#[test]
fn mshr_saturation_backpressures_without_deadlock() {
    // MSHR of 2 with a stream of distinct-line misses and a *slow* memory:
    // early-full must throttle, never deadlock or lose responses.
    let mut c = tiny(1, 2);
    let mut reqs: Vec<MemReq> = (0..32).map(|i| MemReq::read(i, i as u32 * 64)).collect();
    let mut in_mem: Vec<(u32, MemReq)> = Vec::new();
    let mut got = 0;
    let mut cycles = 0u32;
    while got < 32 {
        c.begin_cycle();
        let mut window: Vec<MemReq> = reqs.drain(..reqs.len().min(2)).collect();
        c.offer(&mut window);
        for (i, r) in window.into_iter().enumerate() {
            reqs.insert(i, r);
        }
        c.tick();
        while let Some(r) = c.pop_mem_req() {
            in_mem.push((cycles + 30, r)); // 30-cycle memory
        }
        let (ready, pending): (Vec<_>, Vec<_>) =
            in_mem.drain(..).partition(|(t, _)| *t <= cycles);
        in_mem = pending;
        for (_, r) in ready {
            if !r.write {
                c.push_mem_rsp(MemRsp { tag: r.tag });
            }
        }
        while c.pop_rsp().is_some() {
            got += 1;
        }
        cycles += 1;
        assert!(cycles < 50_000, "MSHR saturation deadlock: {got}/32");
    }
    assert!(c.stats.early_full_stalls > 0, "early-full must have engaged");
}

#[test]
fn write_after_read_same_line_is_ordered_per_bank() {
    // A read miss followed by a write to the same line: both complete.
    let mut c = tiny(1, 4);
    run(
        &mut c,
        vec![MemReq::read(1, 0x40), MemReq::write(2, 0x44)],
        1,
    );
    assert_eq!(c.stats.writes, 1);
    assert_eq!(c.stats.reads, 1);
}

#[test]
fn utilization_is_one_for_conflict_free_traffic() {
    let mut c = tiny(1, 8);
    // One request per cycle: never a conflict.
    for i in 0..16u64 {
        run(&mut c, vec![MemReq::read(i, (i as u32 % 8) * 64)], 1);
    }
    assert_eq!(c.stats.bank_conflicts, 0);
    assert_eq!(c.stats.bank_utilization(), 1.0);
}
