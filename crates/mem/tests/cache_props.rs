//! Property tests for the cache subsystem: liveness (no deadlock, no lost
//! or duplicated responses) under randomized traffic, for every virtual-port
//! configuration the paper evaluates.

use proptest::prelude::*;
use vortex_mem::cache::{Cache, CacheConfig};
use vortex_mem::dram::{Dram, DramConfig};
use vortex_mem::req::{MemReq, MemRsp};

/// Drives `cache` over `dram` until every read in `trace` has responded.
/// Returns the received tags; panics (via assert) on timeout, which would
/// indicate one of the paper's two cache-deadlock hazards.
fn run_trace(config: CacheConfig, dram_cfg: DramConfig, trace: Vec<MemReq>) -> Vec<u64> {
    let mut cache = Cache::new(config);
    let mut dram = Dram::new(dram_cfg);
    let expected_reads = trace.iter().filter(|r| !r.write).count();
    let mut pending = trace;
    let mut got = Vec::new();
    let budget = 50_000u64;
    for _ in 0..budget {
        cache.begin_cycle();
        // Offer up to 4 requests per cycle (one wavefront's worth).
        let mut window: Vec<MemReq> = Vec::new();
        while window.len() < 4 && !pending.is_empty() {
            window.push(pending.remove(0));
        }
        cache.offer(&mut window);
        // Put back the refused ones, preserving order.
        for (i, r) in window.into_iter().enumerate() {
            pending.insert(i, r);
        }
        cache.tick();
        while let Some(req) = cache.peek_mem_req().copied() {
            if dram.push_req(req).is_ok() {
                cache.pop_mem_req();
            } else {
                break;
            }
        }
        dram.tick();
        while let Some(rsp) = dram.pop_rsp() {
            cache.push_mem_rsp(rsp);
        }
        while let Some(MemRsp { tag }) = cache.pop_rsp() {
            got.push(tag);
        }
        if got.len() == expected_reads && pending.is_empty() && cache.is_idle() && dram.is_idle() {
            return got;
        }
    }
    panic!(
        "cache deadlock or lost response: got {} of {expected_reads} reads",
        got.len()
    );
}

fn req_strategy() -> impl Strategy<Value = MemReq> {
    (any::<bool>(), 0u32..64, 0u32..16).prop_map(|(write, line, word)| MemReq {
        tag: 0, // assigned later
        addr: line * 64 + word * 4,
        write,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every accepted read gets exactly one response, regardless of the
    /// port count, traffic mix, or DRAM speed.
    #[test]
    fn reads_complete_exactly_once(
        raw_trace in prop::collection::vec(req_strategy(), 1..200),
        ports in prop::sample::select(vec![1usize, 2, 4]),
        mshr_size in 4usize..32,
        latency in 1u32..50,
        channels in 1u32..4,
    ) {
        let trace: Vec<MemReq> = raw_trace
            .into_iter()
            .enumerate()
            .map(|(i, mut r)| { r.tag = i as u64; r })
            .collect();
        let read_tags: Vec<u64> =
            trace.iter().filter(|r| !r.write).map(|r| r.tag).collect();
        let config = CacheConfig {
            size_bytes: 2048,
            line_bytes: 64,
            num_banks: 4,
            num_ways: 1,
            ports,
            mshr_size,
            input_queue: 2,
            memq_size: 4,
        };
        let dram_cfg = DramConfig { latency, channels, queue_size: 4 };
        let mut got = run_trace(config, dram_cfg, trace);
        got.sort_unstable();
        let mut want = read_tags;
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// On wavefront-coherent traffic (the four lanes of a wavefront touching
    /// the same cache line — the locality Algorithm 2 exploits), virtual
    /// ports monotonically remove bank conflicts, and four ports remove all
    /// of them.
    #[test]
    fn more_ports_never_more_conflicts(
        lines in prop::collection::vec(0u32..64, 1..40),
    ) {
        // Each group of 4 lane requests targets one line at 4 word offsets.
        let trace: Vec<MemReq> = lines
            .iter()
            .enumerate()
            .flat_map(|(g, &line)| {
                (0..4).map(move |lane| MemReq {
                    tag: (g * 4 + lane) as u64,
                    addr: line * 64 + lane as u32 * 4,
                    write: false,
                })
            })
            .collect();
        let dram_cfg = DramConfig { latency: 10, channels: 2, queue_size: 8 };
        let mut conflicts = Vec::new();
        for ports in [1usize, 2, 4] {
            let config = CacheConfig {
                size_bytes: 2048,
                line_bytes: 64,
                num_banks: 4,
                num_ways: 1,
                ports,
                mshr_size: 16,
                input_queue: 2,
                memq_size: 8,
            };
            let mut cache = Cache::new(config);
            let mut dram = Dram::new(dram_cfg);
            let mut pending = trace.clone();
            let mut done = 0usize;
            let reads = trace.iter().filter(|r| !r.write).count();
            for _ in 0..50_000 {
                cache.begin_cycle();
                let mut window: Vec<MemReq> = Vec::new();
                while window.len() < 4 && !pending.is_empty() {
                    window.push(pending.remove(0));
                }
                cache.offer(&mut window);
                for (i, r) in window.into_iter().enumerate() {
                    pending.insert(i, r);
                }
                cache.tick();
                while let Some(req) = cache.peek_mem_req().copied() {
                    if dram.push_req(req).is_ok() { cache.pop_mem_req(); } else { break; }
                }
                dram.tick();
                while let Some(rsp) = dram.pop_rsp() { cache.push_mem_rsp(rsp); }
                while cache.pop_rsp().is_some() { done += 1; }
                if done == reads && pending.is_empty() && cache.is_idle() { break; }
            }
            prop_assert_eq!(done, reads);
            conflicts.push(cache.stats.bank_conflicts);
        }
        prop_assert!(conflicts[1] <= conflicts[0],
            "2 ports worse than 1: {:?}", conflicts);
        prop_assert!(conflicts[2] <= conflicts[1],
            "4 ports worse than 2: {:?}", conflicts);
        prop_assert_eq!(conflicts[2], 0,
            "4 ports must absorb a full wavefront of same-line requests");
    }
}
