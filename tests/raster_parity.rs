//! Device-vs-host rasterizer parity fuzzing: random triangle soups —
//! including degenerate (zero-area) triangles and edges snapped through
//! pixel centers — must render bit-identically on the SIMT kernel and the
//! host reference, at `sim_threads = 1` and `= 4`, on a framebuffer whose
//! dimensions are *not* tile multiples (40×24 → a 3×2 grid of partially
//! covered tiles).

use proptest::prelude::*;
use vortex::gfx::pipeline::Renderer;
use vortex::gfx::{Framebuffer, Mat4, RenderState, Vertex};
use vortex::gpu::GpuConfig;
use vortex::tex::Rgba8;

const W: usize = 40;
const H: usize = 24;

/// NDC x for a screen coordinate on the 40-wide viewport; nudged by ulps
/// until the viewport transform round-trips to *exactly* `sx` (when such
/// an f32 exists), so `sx = k + 0.5` puts an edge exactly through pixel
/// centers and exercises the `e == 0` fill-rule arm.
fn ndc_x(sx: f32) -> f32 {
    let approx = (f64::from(sx) / (W as f64 / 2.0) - 1.0) as f32;
    exact_preimage(sx, |v| (v + 1.0) * 0.5 * W as f32, approx)
}

/// NDC y (y-down window coords) with the same exact round-trip nudge.
fn ndc_y(sy: f32) -> f32 {
    let approx = (1.0 - f64::from(sy) / (H as f64 / 2.0)) as f32;
    exact_preimage(sy, |v| (1.0 - v) * 0.5 * H as f32, approx)
}

/// Solves `fwd(v) == target` by a local ulp search around the algebraic
/// inverse `approx`; falls back to the closest probe when no exact f32
/// preimage exists (still a valid fuzz input, just not exactly on-edge).
fn exact_preimage(target: f32, fwd: impl Fn(f32) -> f32, approx: f32) -> f32 {
    let mut best = approx;
    for step in -4i64..=4 {
        let cand = f32::from_bits((i64::from(approx.to_bits()) + step) as u32);
        if fwd(cand) == target {
            return cand;
        }
        if (fwd(cand) - target).abs() < (fwd(best) - target).abs() {
            best = cand;
        }
    }
    best
}

/// Decodes one fuzzed word into an NDC coordinate. Low bits pick the
/// flavor: mostly continuous positions, sometimes snapped to a pixel
/// center so triangle edges land exactly on `e == 0`.
fn coord(word: u32, axis_px: usize) -> f32 {
    let frac = f64::from(word >> 8) / f64::from(1u32 << 24);
    if word & 3 == 0 {
        // Snap to a pixel-center screen coordinate.
        let k = (word >> 8) % (axis_px as u32);
        let s = k as f32 + 0.5;
        if axis_px == W {
            ndc_x(s)
        } else {
            ndc_y(s)
        }
    } else {
        (frac * 2.4 - 1.2) as f32
    }
}

fn soup_from_words(words: &[u32]) -> (Vec<Vertex>, Vec<u32>) {
    let mut verts = Vec::new();
    for tri in words.chunks_exact(3) {
        let mut tri_verts: Vec<Vertex> = tri
            .iter()
            .map(|&w| {
                let x = coord(w, W);
                let y = coord(w.rotate_left(11), H);
                let z = (f64::from(w.rotate_left(19) >> 8) / f64::from(1u32 << 24) * 1.8 - 0.9) as f32;
                Vertex::new(x, y, z, 0.0, 0.0).with_color(Rgba8::new(
                    (w >> 3) as u8 | 1,
                    (w >> 13) as u8 | 1,
                    (w >> 23) as u8 | 1,
                    255,
                ))
            })
            .collect();
        // A sliver of the soup is degenerate: duplicate a vertex (zero
        // area) — geometry must reject it identically everywhere.
        if tri[0] & 31 == 7 {
            tri_verts[2] = tri_verts[1];
        }
        verts.extend(tri_verts);
    }
    let idx = (0..verts.len() as u32).collect();
    (verts, idx)
}

fn depth_bits(fb: &Framebuffer) -> Vec<u32> {
    fb.depth.iter().map(|z| z.to_bits()).collect()
}

fn assert_frames_match(soup: &(Vec<Vertex>, Vec<u32>), state: &RenderState) {
    let (verts, idx) = soup;
    let mut host_fb = None;
    for sim_threads in [1usize, 4] {
        let mut config = GpuConfig::with_cores(4);
        config.sim_threads = sim_threads;
        let mut r = Renderer::new(config, W, H);
        let report = r.draw(verts, idx, &Mat4::IDENTITY, state, None);
        let host = host_fb.get_or_insert_with(|| r.draw_host(verts, idx, &Mat4::IDENTITY, state, None));
        assert_eq!(
            report.framebuffer.color, host.color,
            "color parity broke at sim_threads={sim_threads}"
        );
        assert_eq!(
            depth_bits(&report.framebuffer),
            depth_bits(host),
            "depth parity broke at sim_threads={sim_threads}"
        );
        assert_eq!(report.framebuffer.stencil, host.stencil);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random soups (continuous, snapped-to-center and degenerate
    /// triangles mixed) render identically on device and host.
    #[test]
    fn device_matches_host_over_random_soups(
        words in prop::collection::vec(0u32..u32::MAX, 12),
    ) {
        let soup = soup_from_words(&words);
        assert_frames_match(&soup, &RenderState::default());
    }
}

/// The deterministic worst case outside the proptest loop: a quad split
/// along a diagonal through pixel centers, on the partial-tile target.
#[test]
fn shared_diagonal_on_partial_tile_frame() {
    let a = Vertex::new(ndc_x(4.5), ndc_y(4.5), 0.0, 0.0, 0.0);
    let b = Vertex::new(ndc_x(20.5), ndc_y(4.5), 0.0, 0.0, 0.0);
    let c = Vertex::new(ndc_x(20.5), ndc_y(20.5), 0.0, 0.0, 0.0);
    let d = Vertex::new(ndc_x(4.5), ndc_y(20.5), 0.0, 0.0, 0.0);
    let verts = vec![
        a.with_color(Rgba8::new(255, 0, 0, 255)),
        b.with_color(Rgba8::new(255, 0, 0, 255)),
        c.with_color(Rgba8::new(255, 0, 0, 255)),
        a.with_color(Rgba8::new(0, 0, 255, 255)),
        c.with_color(Rgba8::new(0, 0, 255, 255)),
        d.with_color(Rgba8::new(0, 0, 255, 255)),
    ];
    let soup = (verts, vec![0, 1, 2, 3, 4, 5]);
    assert_frames_match(&soup, &RenderState::default());
}
