//! Divergence fuzzing: random nested `split`/`join` region trees with
//! per-lane predicates derived from the thread id, executed on the full
//! GPU and on a per-lane oracle. Exercises the IPDOM stack, masked
//! execution and reconvergence for arbitrary nesting shapes.

use proptest::prelude::*;
use vortex::asm::Assembler;
use vortex::gpu::{Gpu, GpuConfig};
use vortex::isa::{csr, Reg};

const ENTRY: u32 = 0x8000_0000;
const DUMP: u32 = 0x3_0000;
const LANES: usize = 4;

/// A region tree: each node guards its children behind a predicate on
/// `tid` (bit test or comparison) and contributes a signature value.
#[derive(Debug, Clone)]
enum Region {
    /// Add `value` to the lane's signature.
    Emit { value: u8 },
    /// `if pred(tid) { children }` under split/join.
    Guard { pred: Pred, children: Vec<Region> },
}

#[derive(Debug, Clone, Copy)]
enum Pred {
    /// `tid & (1 << bit) != 0`.
    Bit(u8),
    /// `tid < limit`.
    Less(u8),
}

impl Pred {
    fn eval(self, tid: usize) -> bool {
        match self {
            Pred::Bit(b) => tid & (1 << (b % 2)) != 0,
            Pred::Less(l) => tid < usize::from(l % LANES as u8 + 1),
        }
    }
}

fn oracle(regions: &[Region], tid: usize, sig: &mut u32) {
    for r in regions {
        match r {
            Region::Emit { value } => *sig = sig.wrapping_mul(31).wrapping_add(u32::from(*value)),
            Region::Guard { pred, children } => {
                if pred.eval(tid) {
                    oracle(children, tid, sig);
                }
            }
        }
    }
}

/// Emits the region tree. `sig` lives in x20, `tid` in x21.
fn emit(a: &mut Assembler, regions: &[Region], next_label: &mut u32) {
    for r in regions {
        match r {
            Region::Emit { value } => {
                // sig = sig * 31 + value.
                a.li(Reg::X5, 31);
                a.mul(Reg::X20, Reg::X20, Reg::X5);
                a.addi(Reg::X20, Reg::X20, i32::from(*value));
            }
            Region::Guard { pred, children } => {
                match pred {
                    Pred::Bit(b) => {
                        a.li(Reg::X5, 1 << (b % 2));
                        a.and(Reg::X6, Reg::X21, Reg::X5);
                        a.snez(Reg::X6, Reg::X6);
                    }
                    Pred::Less(l) => {
                        a.li(Reg::X5, i32::from(l % LANES as u8 + 1));
                        a.slt(Reg::X6, Reg::X21, Reg::X5);
                    }
                }
                let label = format!("skip_{}", *next_label);
                *next_label += 1;
                a.split(Reg::X6);
                a.beqz(Reg::X6, &label);
                emit(a, children, next_label);
                a.label(&label).expect("unique label");
                a.join();
            }
        }
    }
}

fn region_strategy() -> impl Strategy<Value = Vec<Region>> {
    let leaf = (1u8..100).prop_map(|value| Region::Emit { value });
    let pred = prop_oneof![
        (0u8..2).prop_map(Pred::Bit),
        (0u8..4).prop_map(Pred::Less),
    ];
    let node = leaf.prop_recursive(3, 24, 4, move |inner| {
        (pred.clone(), prop::collection::vec(inner, 1..4))
            .prop_map(|(pred, children)| Region::Guard { pred, children })
    });
    prop::collection::vec(node, 1..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every lane's signature after a random nested divergence tree
    /// matches the per-lane oracle, and the wavefront fully reconverges
    /// (the final store runs with all lanes).
    #[test]
    fn nested_divergence_matches_oracle(regions in region_strategy()) {
        let mut a = Assembler::new();
        a.li(Reg::X5, LANES as i32);
        a.tmc(Reg::X5);
        a.csrr(Reg::X21, csr::VX_TID);
        a.li(Reg::X20, 1); // signature seed
        let mut next_label = 0;
        emit(&mut a, &regions, &mut next_label);
        // All lanes store their signature (proves reconvergence).
        a.slli(Reg::X7, Reg::X21, 2);
        a.li(Reg::X8, DUMP as i32);
        a.add(Reg::X7, Reg::X7, Reg::X8);
        a.sw(Reg::X20, Reg::X7, 0);
        a.ecall();
        let prog = a.assemble(ENTRY).expect("assembles");

        let mut gpu = Gpu::new(GpuConfig::with_cores(1));
        gpu.ram.write_bytes(prog.base, &prog.to_bytes());
        gpu.launch(prog.entry);
        gpu.run(2_000_000).expect("finishes");

        for tid in 0..LANES {
            let mut sig = 1u32;
            oracle(&regions, tid, &mut sig);
            let got = gpu.ram.read_u32(DUMP + (tid as u32) * 4);
            prop_assert_eq!(got, sig, "lane {} of {:?}", tid, regions);
        }
    }
}
