//! Cross-crate integration tests: every benchmark kernel validated on
//! several processor shapes, through the full driver path.

use vortex::gpu::{CoreConfig, GpuConfig};
use vortex::kernels::rodinia::all_rodinia_small;
use vortex::kernels::{Benchmark, FilterKind, TexBench};
use vortex::mem::hierarchy::{l2_default, l3_default};

#[test]
fn full_suite_validates_on_one_core() {
    for b in all_rodinia_small() {
        let r = b.run_on(&GpuConfig::with_cores(1));
        assert!(r.validated, "{} failed", r.name);
        assert!(r.stats.cycles > 0);
    }
}

#[test]
fn full_suite_validates_on_four_cores() {
    for b in all_rodinia_small() {
        let r = b.run_on(&GpuConfig::with_cores(4));
        assert!(r.validated, "{} failed", r.name);
    }
}

#[test]
fn full_suite_validates_with_l2() {
    let mut config = GpuConfig::with_cores(2);
    config.l2 = Some(l2_default());
    for b in all_rodinia_small() {
        let r = b.run_on(&config);
        assert!(r.validated, "{} failed with L2", r.name);
    }
}

#[test]
fn full_suite_validates_with_l2_and_l3() {
    let mut config = GpuConfig::with_cores(4);
    config.cores_per_cluster = 2;
    config.l2 = Some(l2_default());
    config.l3 = Some(l3_default());
    for b in all_rodinia_small() {
        let r = b.run_on(&config);
        assert!(r.validated, "{} failed with L2+L3", r.name);
    }
}

#[test]
fn full_suite_validates_on_wide_cores() {
    let mut config = GpuConfig::with_cores(1);
    config.core = CoreConfig::with_dims(8, 8);
    for b in all_rodinia_small() {
        let r = b.run_on(&config);
        assert!(r.validated, "{} failed on 8W-8T", r.name);
    }
}

#[test]
fn texture_filters_validate_on_two_cores() {
    for filter in [FilterKind::Point, FilterKind::Bilinear, FilterKind::Trilinear] {
        for hw in [false, true] {
            let b = TexBench::new(filter, hw, 4);
            let r = b.run_on(&GpuConfig::with_cores(2));
            assert!(r.validated, "{} failed", r.name);
        }
    }
}

#[test]
fn virtual_ports_never_break_correctness() {
    for ports in [1usize, 2, 4] {
        let mut config = GpuConfig::with_cores(1);
        config.core.dcache.ports = ports;
        for b in all_rodinia_small() {
            let r = b.run_on(&config);
            assert!(r.validated, "{} failed at {ports} ports", r.name);
        }
    }
}

#[test]
fn slow_memory_never_breaks_correctness() {
    let mut config = GpuConfig::with_cores(2);
    config.dram.latency = 500;
    config.dram.channels = 1;
    for b in all_rodinia_small() {
        let r = b.run_on(&config);
        assert!(r.validated, "{} failed with slow DRAM", r.name);
    }
}
