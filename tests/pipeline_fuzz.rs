//! End-to-end pipeline fuzzing: random straight-line integer programs run
//! on the full cycle-level GPU and on an independent scalar oracle written
//! directly against the ISA semantics. Any scoreboard, writeback-ordering
//! or forwarding bug in the timing pipeline shows up as a state mismatch.

use proptest::prelude::*;
use vortex::asm::Assembler;
use vortex::gpu::{Gpu, GpuConfig};
use vortex::isa::Reg;

const ENTRY: u32 = 0x8000_0000;
const DUMP: u32 = 0x2_0000;

/// One random ALU step: (opcode selector, rd 1..8, rs1 1..8, rs2 1..8, imm).
type Step = (u8, u8, u8, u8, i16);

/// The independent oracle: executes the same step list over a tiny
/// register file using plain Rust arithmetic.
fn oracle(steps: &[Step]) -> [u32; 8] {
    let mut r = [0u32; 8];
    // Seed registers 1..8 with their index (matches the program prologue).
    for (i, v) in r.iter_mut().enumerate() {
        *v = (i as u32) * 0x1234_5679;
    }
    for &(op, rd, rs1, rs2, imm) in steps {
        let (d, a, b) = (rd as usize % 8, rs1 as usize % 8, rs2 as usize % 8);
        if d == 0 {
            continue; // x0-analogue: register 0 stays fixed in this model
        }
        let (va, vb) = (r[a], r[b]);
        r[d] = match op % 12 {
            0 => va.wrapping_add(vb),
            1 => va.wrapping_sub(vb),
            2 => va ^ vb,
            3 => va | vb,
            4 => va & vb,
            5 => va.wrapping_mul(vb),
            6 => va.wrapping_add((i32::from(imm) >> 4) as u32),
            7 => va ^ ((i32::from(imm) >> 4) as u32),
            8 => va.wrapping_shl(u32::from(rs2) & 31),
            9 => va.wrapping_shr(u32::from(rs2) & 31),
            10 => u32::from((va as i32) < (vb as i32)),
            11 => va.checked_div(vb).unwrap_or(u32::MAX),
            _ => unreachable!(),
        };
    }
    r
}

/// Builds the same computation as a Vortex program over x16..x23 (so the
/// harness registers x5..x15 stay free), then dumps the eight registers.
fn build_program(steps: &[Step]) -> vortex::asm::Program {
    let reg = |i: u8| Reg::from_index(16 + u32::from(i) % 8);
    let mut a = Assembler::new();
    for i in 0..8u8 {
        a.li(reg(i), (u32::from(i).wrapping_mul(0x1234_5679)) as i32);
    }
    for &(op, rd, rs1, rs2, imm) in steps {
        let (d, s1, s2) = (reg(rd), reg(rs1), reg(rs2));
        if d == reg(0) {
            continue;
        }
        match op % 12 {
            0 => a.add(d, s1, s2),
            1 => a.sub(d, s1, s2),
            2 => a.xor(d, s1, s2),
            3 => a.or(d, s1, s2),
            4 => a.and(d, s1, s2),
            5 => a.mul(d, s1, s2),
            6 => a.addi(d, s1, i32::from(imm) >> 4),
            7 => a.xori(d, s1, i32::from(imm) >> 4),
            8 => a.slli(d, s1, i32::from(rs2) & 31),
            9 => a.srli(d, s1, i32::from(rs2) & 31),
            10 => a.slt(d, s1, s2),
            11 => a.divu(d, s1, s2),
            _ => unreachable!(),
        };
    }
    // Dump x16..x23 to memory.
    a.li(Reg::X5, DUMP as i32);
    for i in 0..8u8 {
        a.sw(reg(i), Reg::X5, i32::from(i) * 4);
    }
    a.ecall();
    a.assemble(ENTRY).expect("assembles")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The cycle-level pipeline computes exactly what the scalar oracle
    /// computes, for random dependency chains and operation mixes.
    #[test]
    fn pipeline_matches_scalar_oracle(
        steps in prop::collection::vec(
            (0u8..12, 0u8..8, 0u8..8, 0u8..8, any::<i16>()),
            1..60,
        ),
    ) {
        let expect = oracle(&steps);
        let prog = build_program(&steps);
        let mut gpu = Gpu::new(GpuConfig::with_cores(1));
        gpu.ram.write_bytes(prog.base, &prog.to_bytes());
        gpu.launch(prog.entry);
        gpu.run(1_000_000).expect("finishes");
        for (i, &want) in expect.iter().enumerate() {
            let got = gpu.ram.read_u32(DUMP + (i as u32) * 4);
            prop_assert_eq!(got, want, "register {} of {:?}", i, steps);
        }
    }
}

/// Multi-lane variant: all four lanes execute the same random program over
/// lane-dependent seeds; each lane's final registers must match the scalar
/// oracle run with that lane's seed. Exercises masked per-lane writeback
/// through the whole pipeline.
fn oracle_seeded(steps: &[Step], seed: u32) -> [u32; 8] {
    let mut r = [0u32; 8];
    for (i, v) in r.iter_mut().enumerate() {
        *v = (i as u32).wrapping_mul(0x1234_5679).wrapping_add(seed);
    }
    for &(op, rd, rs1, rs2, imm) in steps {
        let (d, a, b) = (rd as usize % 8, rs1 as usize % 8, rs2 as usize % 8);
        if d == 0 {
            continue;
        }
        let (va, vb) = (r[a], r[b]);
        r[d] = match op % 12 {
            0 => va.wrapping_add(vb),
            1 => va.wrapping_sub(vb),
            2 => va ^ vb,
            3 => va | vb,
            4 => va & vb,
            5 => va.wrapping_mul(vb),
            6 => va.wrapping_add((i32::from(imm) >> 4) as u32),
            7 => va ^ ((i32::from(imm) >> 4) as u32),
            8 => va.wrapping_shl(u32::from(rs2) & 31),
            9 => va.wrapping_shr(u32::from(rs2) & 31),
            10 => u32::from((va as i32) < (vb as i32)),
            11 => va.checked_div(vb).unwrap_or(u32::MAX),
            _ => unreachable!(),
        };
    }
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn simt_pipeline_matches_per_lane_oracle(
        steps in prop::collection::vec(
            (0u8..12, 0u8..8, 0u8..8, 0u8..8, any::<i16>()),
            1..40,
        ),
    ) {
        let reg = |i: u8| Reg::from_index(16 + u32::from(i) % 8);
        let mut a = Assembler::new();
        a.li(Reg::X5, 4);
        a.tmc(Reg::X5); // 4 lanes on
        // Per-lane seed: tid * 0x9E3779B9.
        a.csrr(Reg::X6, vortex::isa::csr::VX_TID);
        a.li(Reg::X7, 0x9E37_79B9u32 as i32);
        a.mul(Reg::X6, Reg::X6, Reg::X7);
        for i in 0..8u8 {
            a.li(reg(i), (u32::from(i).wrapping_mul(0x1234_5679)) as i32);
            a.add(reg(i), reg(i), Reg::X6);
        }
        for &(op, rd, rs1, rs2, imm) in &steps {
            let (d, s1, s2) = (reg(rd), reg(rs1), reg(rs2));
            if d == reg(0) {
                continue;
            }
            match op % 12 {
                0 => a.add(d, s1, s2),
                1 => a.sub(d, s1, s2),
                2 => a.xor(d, s1, s2),
                3 => a.or(d, s1, s2),
                4 => a.and(d, s1, s2),
                5 => a.mul(d, s1, s2),
                6 => a.addi(d, s1, i32::from(imm) >> 4),
                7 => a.xori(d, s1, i32::from(imm) >> 4),
                8 => a.slli(d, s1, i32::from(rs2) & 31),
                9 => a.srli(d, s1, i32::from(rs2) & 31),
                10 => a.slt(d, s1, s2),
                11 => a.divu(d, s1, s2),
                _ => unreachable!(),
            };
        }
        // Each lane dumps its 8 registers to DUMP + tid*32.
        a.csrr(Reg::X5, vortex::isa::csr::VX_TID);
        a.slli(Reg::X5, Reg::X5, 5);
        a.li(Reg::X6, DUMP as i32);
        a.add(Reg::X5, Reg::X5, Reg::X6);
        for i in 0..8u8 {
            a.sw(reg(i), Reg::X5, i32::from(i) * 4);
        }
        a.ecall();
        let prog = a.assemble(ENTRY).expect("assembles");

        let mut gpu = Gpu::new(GpuConfig::with_cores(1));
        gpu.ram.write_bytes(prog.base, &prog.to_bytes());
        gpu.launch(prog.entry);
        gpu.run(1_000_000).expect("finishes");
        for tid in 0..4u32 {
            let seed = tid.wrapping_mul(0x9E37_79B9);
            let expect = oracle_seeded(&steps, seed);
            for (i, &want) in expect.iter().enumerate() {
                let got = gpu.ram.read_u32(DUMP + tid * 32 + (i as u32) * 4);
                prop_assert_eq!(got, want, "lane {} register {}", tid, i);
            }
        }
    }
}
