//! Stress tests: deep divergence nesting, barrier storms, fences, and
//! respawn cycles — the failure-injection side of the test plan.

use vortex::asm::Assembler;
use vortex::gpu::{Gpu, GpuConfig};
use vortex::isa::{csr, Reg};

const ENTRY: u32 = 0x8000_0000;

fn run(gpu: &mut Gpu, a: &Assembler) {
    let prog = a.assemble(ENTRY).expect("assembles");
    gpu.ram.write_bytes(prog.base, &prog.to_bytes());
    gpu.launch(prog.entry);
    gpu.run(2_000_000).expect("kernel finishes");
}

/// Nested divergence 3 levels deep: every thread takes a unique path
/// keyed by its tid bits and records a signature.
#[test]
fn nested_divergence_reaches_every_thread() {
    let mut gpu = Gpu::new(GpuConfig::with_cores(1));
    let mut a = Assembler::new();
    a.li(Reg::X5, 4);
    a.tmc(Reg::X5);
    a.csrr(Reg::X6, csr::VX_TID);
    a.li(Reg::X20, 0); // signature accumulator
    // Level 1: tid bit 0.
    a.andi(Reg::X7, Reg::X6, 1);
    a.split(Reg::X7);
    a.beqz(Reg::X7, "l1_else");
    a.ori(Reg::X20, Reg::X20, 1);
    // Level 2 inside the taken side: tid bit 1.
    a.andi(Reg::X8, Reg::X6, 2);
    a.split(Reg::X8);
    a.beqz(Reg::X8, "l2_else");
    a.ori(Reg::X20, Reg::X20, 4);
    a.label("l2_else").unwrap();
    a.join();
    a.label("l1_else").unwrap();
    a.join();
    // Level 1b: tid bit 1 again for the other side.
    a.andi(Reg::X9, Reg::X6, 2);
    a.split(Reg::X9);
    a.beqz(Reg::X9, "l3_else");
    a.ori(Reg::X20, Reg::X20, 2);
    a.label("l3_else").unwrap();
    a.join();
    // Store signature.
    a.slli(Reg::X10, Reg::X6, 2);
    a.li(Reg::X11, 0x4000);
    a.add(Reg::X10, Reg::X10, Reg::X11);
    a.sw(Reg::X20, Reg::X10, 0);
    a.ecall();
    run(&mut gpu, &a);
    // tid 0: 0; tid 1: bit0 only = 1; tid 2: bit1 = 2; tid 3: 1|4|2 = 7.
    assert_eq!(gpu.ram.read_u32(0x4000), 0);
    assert_eq!(gpu.ram.read_u32(0x4004), 1);
    assert_eq!(gpu.ram.read_u32(0x4008), 2);
    assert_eq!(gpu.ram.read_u32(0x400C), 7);
}

/// Barrier storm: 4 wavefronts synchronize at 8 successive barriers,
/// rotating through barrier ids; a counter verifies ordering.
#[test]
fn repeated_barriers_stay_synchronized() {
    let mut gpu = Gpu::new(GpuConfig::with_cores(1));
    let mut a = Assembler::new();
    a.csrr(Reg::X5, csr::VX_NW);
    a.la(Reg::X6, "work");
    a.wspawn(Reg::X5, Reg::X6);
    a.j("work");
    a.label("work").unwrap();
    a.li(Reg::X20, 0); // round
    a.label("round").unwrap();
    // Everyone bumps a per-wavefront counter then barriers.
    a.csrr(Reg::X7, csr::VX_WID);
    a.slli(Reg::X7, Reg::X7, 2);
    a.li(Reg::X8, 0x5000);
    a.add(Reg::X7, Reg::X7, Reg::X8);
    a.lw(Reg::X9, Reg::X7, 0);
    a.addi(Reg::X9, Reg::X9, 1);
    a.sw(Reg::X9, Reg::X7, 0);
    a.andi(Reg::X10, Reg::X20, 7); // barrier id = round % 8
    a.li(Reg::X11, 4);
    a.bar(Reg::X10, Reg::X11);
    a.addi(Reg::X20, Reg::X20, 1);
    a.li(Reg::X12, 8);
    a.blt(Reg::X20, Reg::X12, "round");
    a.ecall();
    run(&mut gpu, &a);
    for wid in 0..4u32 {
        assert_eq!(gpu.ram.read_u32(0x5000 + wid * 4), 8, "wavefront {wid}");
    }
}

/// Fence flushes the data cache: a value written before the fence is
/// re-read correctly after it (the timing path; data is functionally
/// coherent by construction, so this exercises liveness of flush+drain).
#[test]
fn fence_drains_and_flushes() {
    let mut gpu = Gpu::new(GpuConfig::with_cores(1));
    let mut a = Assembler::new();
    a.li(Reg::X5, 0x6000);
    a.li(Reg::X6, 77);
    a.sw(Reg::X6, Reg::X5, 0);
    a.fence();
    a.lw(Reg::X7, Reg::X5, 0);
    a.li(Reg::X8, 0x6004);
    a.sw(Reg::X7, Reg::X8, 0);
    a.fence();
    a.ecall();
    run(&mut gpu, &a);
    assert_eq!(gpu.ram.read_u32(0x6004), 77);
    let stats = gpu.stats();
    assert!(stats.cores[0].dcache.flushes >= 2, "both fences flushed");
}

/// Wavefronts can halt and be respawned repeatedly by wavefront 0.
#[test]
fn respawn_cycles_work() {
    let mut gpu = Gpu::new(GpuConfig::with_cores(1));
    let mut a = Assembler::new();
    // Wavefront 0 spawns wavefront 1 twice; wavefront 1 increments a
    // counter and halts each time.
    a.csrr(Reg::X5, csr::VX_WID);
    a.bnez(Reg::X5, "child");
    a.li(Reg::X20, 2); // respawn count
    a.label("again").unwrap();
    a.li(Reg::X6, 2);
    a.la(Reg::X7, "child");
    a.wspawn(Reg::X6, Reg::X7);
    // Busy-wait a bounded number of cycles for the child to finish; the
    // counter is functionally visible immediately after the child's store.
    a.li(Reg::X8, 400);
    a.label("wait").unwrap();
    a.addi(Reg::X8, Reg::X8, -1);
    a.bnez(Reg::X8, "wait");
    a.addi(Reg::X20, Reg::X20, -1);
    a.bnez(Reg::X20, "again");
    a.ecall();
    a.label("child").unwrap();
    a.li(Reg::X9, 0x7000);
    a.lw(Reg::X10, Reg::X9, 0);
    a.addi(Reg::X10, Reg::X10, 1);
    a.sw(Reg::X10, Reg::X9, 0);
    a.ecall();
    run(&mut gpu, &a);
    assert_eq!(gpu.ram.read_u32(0x7000), 2, "child ran twice");
}

/// Shared-memory loads/stores round-trip per core and stay private
/// between cores.
#[test]
fn shared_memory_is_core_private() {
    let mut gpu = Gpu::new(GpuConfig::with_cores(2));
    let mut a = Assembler::new();
    let smem_base = vortex::gpu::SMEM_BASE as i32;
    a.csrr(Reg::X5, csr::VX_CID);
    a.addi(Reg::X6, Reg::X5, 100); // value = 100 + cid
    a.li(Reg::X7, smem_base);
    a.sw(Reg::X6, Reg::X7, 0); // same *local* address on both cores
    a.lw(Reg::X8, Reg::X7, 0);
    // Store what we read back to a per-core global slot.
    a.slli(Reg::X9, Reg::X5, 2);
    a.li(Reg::X10, 0x7100);
    a.add(Reg::X9, Reg::X9, Reg::X10);
    a.sw(Reg::X8, Reg::X9, 0);
    a.ecall();
    run(&mut gpu, &a);
    assert_eq!(gpu.ram.read_u32(0x7100), 100, "core 0 sees its own value");
    assert_eq!(gpu.ram.read_u32(0x7104), 101, "core 1 sees its own value");
}

/// Global barrier + fence across an L2-equipped two-cluster machine:
/// cores exchange data through the shared hierarchy around a global
/// barrier, repeatedly.
#[test]
fn global_barrier_with_l2_hierarchy() {
    let mut config = GpuConfig::with_cores(4);
    config.cores_per_cluster = 2;
    config.l2 = Some(vortex::mem::hierarchy::l2_default());
    let mut gpu = Gpu::new(config);
    let mut a = Assembler::new();
    // Each core (wavefront 0, thread 0 only) does 3 rounds of:
    // write slot, fence, global barrier, read all slots, accumulate.
    a.li(Reg::X20, 0); // round
    a.li(Reg::X21, 0); // accumulator
    a.csrr(Reg::X5, csr::VX_CID);
    a.label("round").unwrap();
    // slots[cid] = round * 10 + cid.
    a.li(Reg::X6, 10);
    a.mul(Reg::X7, Reg::X20, Reg::X6);
    a.add(Reg::X7, Reg::X7, Reg::X5);
    a.slli(Reg::X8, Reg::X5, 2);
    a.li(Reg::X9, 0x8000);
    a.add(Reg::X8, Reg::X8, Reg::X9);
    a.sw(Reg::X7, Reg::X8, 0);
    a.fence();
    a.li(Reg::X10, vortex::isa::vx::BAR_GLOBAL_BIT as i32);
    a.add(Reg::X10, Reg::X10, Reg::X20); // rotate barrier ids
    a.li(Reg::X11, 4);
    a.bar(Reg::X10, Reg::X11);
    // Sum all four slots.
    a.li(Reg::X12, 0x8000);
    for i in 0..4 {
        a.lw(Reg::X13, Reg::X12, i * 4);
        a.add(Reg::X21, Reg::X21, Reg::X13);
    }
    // Second barrier: nobody overwrites a slot before everyone has read
    // the round (barrier ids 8..10 to avoid aliasing the first set).
    a.li(Reg::X10, vortex::isa::vx::BAR_GLOBAL_BIT as i32);
    a.addi(Reg::X10, Reg::X10, 8);
    a.add(Reg::X10, Reg::X10, Reg::X20);
    a.li(Reg::X11, 4);
    a.bar(Reg::X10, Reg::X11);
    a.addi(Reg::X20, Reg::X20, 1);
    a.li(Reg::X14, 3);
    a.blt(Reg::X20, Reg::X14, "round");
    // Store the per-core accumulator.
    a.slli(Reg::X15, Reg::X5, 2);
    a.li(Reg::X16, 0x8100);
    a.add(Reg::X15, Reg::X15, Reg::X16);
    a.sw(Reg::X21, Reg::X15, 0);
    a.ecall();
    run(&mut gpu, &a);
    // Every core must have summed rounds 0..3 of all cores:
    // Σ_round Σ_cid (round*10 + cid) = (0+10+20)*4 + (0+1+2+3)*3 = 120+18.
    for cid in 0..4u32 {
        assert_eq!(gpu.ram.read_u32(0x8100 + cid * 4), 138, "core {cid}");
    }
}

/// Full-scale smoke: the paper's 32-core, 512-thread machine boots, runs
/// a strided kernel on every thread, and drains cleanly.
#[test]
fn thirty_two_core_machine_smoke() {
    let mut gpu = Gpu::new(GpuConfig::with_cores(32));
    let mut a = Assembler::new();
    // Standard bootstrap + every thread stores its gtid.
    a.csrr(Reg::X5, csr::VX_NW);
    a.la(Reg::X6, "worker");
    a.wspawn(Reg::X5, Reg::X6);
    a.j("worker");
    a.label("worker").unwrap();
    a.csrr(Reg::X5, csr::VX_NT);
    a.tmc(Reg::X5);
    a.csrr(Reg::X6, csr::VX_GTID);
    a.slli(Reg::X7, Reg::X6, 2);
    a.li(Reg::X8, 0x10_0000);
    a.add(Reg::X7, Reg::X7, Reg::X8);
    a.sw(Reg::X6, Reg::X7, 0);
    a.ecall();
    run(&mut gpu, &a);
    let stats = gpu.stats();
    assert_eq!(stats.cores.len(), 32);
    for gtid in (0..512u32).step_by(37) {
        assert_eq!(gpu.ram.read_u32(0x10_0000 + gtid * 4), gtid);
    }
    assert!(
        stats.cores.iter().all(|c| c.thread_instrs >= 16 * 4),
        "all 512 threads executed"
    );
}
