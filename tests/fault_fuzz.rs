//! Fault-injection fuzzing: random seeds and fault plans against a small
//! SIMT kernel. The contract under test is the resilience layer's:
//!
//! * **benign** plans (stalls and delays only) may slow the machine down
//!   arbitrarily but the kernel must still complete with correct results;
//! * **destructive** plans (dropped or corrupted responses) may hang or
//!   time out, but every outcome is a structured [`SimError`] — the
//!   simulator never panics and never returns silently wrong data;
//! * identical seeds give identical cycle counts and identical reports.

use proptest::prelude::*;
use vortex::asm::Assembler;
use vortex::faults::FaultConfig;
use vortex::gpu::{Gpu, GpuConfig, SimError};
use vortex::isa::{csr, Reg};

const ENTRY: u32 = 0x8000_0000;
const OUT: u32 = 0x4_0000;
const LANES: u32 = 4;

/// A SIMT kernel with divergence, shared DRAM traffic, and a loop: each
/// lane computes `sum(0..=tid) * 2 + 1` and stores it to `OUT[tid]`.
fn kernel() -> vortex::asm::Program {
    let mut a = Assembler::new();
    a.li(Reg::X5, LANES as i32);
    a.tmc(Reg::X5);
    a.csrr(Reg::X6, csr::VX_TID);
    a.li(Reg::X7, 0); // acc
    a.li(Reg::X8, 0); // i
    // Uniform trip count; lanes mask their contribution with `i <= tid`
    // arithmetically so the loop branch never diverges.
    a.label("loop").unwrap();
    a.slt(Reg::X12, Reg::X6, Reg::X8); // tid < i
    a.xori(Reg::X12, Reg::X12, 1); // i <= tid
    a.mul(Reg::X13, Reg::X8, Reg::X12);
    a.add(Reg::X7, Reg::X7, Reg::X13);
    a.addi(Reg::X8, Reg::X8, 1);
    a.li(Reg::X9, LANES as i32);
    a.blt(Reg::X8, Reg::X9, "loop");
    // Divergent tail: odd lanes double-and-increment, even lanes copy.
    a.andi(Reg::X9, Reg::X6, 1);
    a.split(Reg::X9);
    a.beqz(Reg::X9, "even");
    a.slli(Reg::X7, Reg::X7, 1);
    a.addi(Reg::X7, Reg::X7, 1);
    a.j("merge");
    a.label("even").unwrap();
    a.slli(Reg::X7, Reg::X7, 1);
    a.addi(Reg::X7, Reg::X7, 1);
    a.label("merge").unwrap();
    a.join();
    a.slli(Reg::X10, Reg::X6, 2);
    a.li(Reg::X11, OUT as i32);
    a.add(Reg::X10, Reg::X10, Reg::X11);
    a.sw(Reg::X7, Reg::X10, 0);
    a.ecall();
    a.assemble(ENTRY).expect("kernel assembles")
}

fn expected(tid: u32) -> u32 {
    (0..=tid).sum::<u32>() * 2 + 1
}

/// Runs the kernel under `faults` and returns the structured outcome.
fn run_under(faults: &FaultConfig) -> Result<u64, SimError> {
    let mut config = GpuConfig::with_cores(1);
    config.watchdog_cycles = 5_000;
    let mut gpu = Gpu::new(config);
    gpu.apply_faults(faults);
    let prog = kernel();
    gpu.ram.write_bytes(prog.base, &prog.to_bytes());
    gpu.launch(prog.entry);
    let stats = gpu.run(1_000_000)?;
    for tid in 0..LANES {
        assert_eq!(
            gpu.ram.read_u32(OUT + tid * 4),
            expected(tid),
            "lane {tid} result corrupted under benign-completed run {faults}"
        );
    }
    Ok(stats.cycles)
}

fn plan_strategy() -> impl Strategy<Value = FaultConfig> {
    (
        1u64..u64::MAX,
        0u16..401,
        0u16..401,
        (0u16..401, 1u32..97),
        0u16..151,
        0u16..301,
        0u16..151,
        0u16..301,
    )
        .prop_map(
            |(seed, elastic, dstall, (ddelay, dlat), drop, crsp, corrupt, tstall)| FaultConfig {
                seed,
                elastic_stall: elastic,
                dram_stall: dstall,
                dram_delay: ddelay,
                dram_extra_latency: dlat,
                dram_drop: drop,
                cache_rsp_stall: crsp,
                corrupt,
                tex_stall: tstall,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Benign fault plans (no drops, no corruption) only cost cycles:
    /// the kernel always completes and results are always correct.
    #[test]
    fn benign_faults_never_change_results(plan in plan_strategy()) {
        let benign = FaultConfig { dram_drop: 0, corrupt: 0, ..plan };
        prop_assert!(benign.is_benign());
        let cycles = run_under(&benign).expect("benign faults cannot stop the machine");
        // Sanity: the clean machine's cycle count is a lower bound.
        let clean = run_under(&FaultConfig::off()).expect("clean run");
        prop_assert!(cycles >= clean);
    }

    /// Any fault plan — including response drops and fill-tag corruption
    /// — yields either a correct completion or a structured error. The
    /// assertion is the absence of a panic: `run_under` panics only if a
    /// *completed* run returned wrong data.
    #[test]
    fn no_fault_plan_can_panic_the_simulator(plan in plan_strategy()) {
        match run_under(&plan) {
            Ok(_) => {}
            Err(SimError::Timeout { .. }) => {}
            Err(SimError::Hang(report)) => {
                // The report must name at least one stuck component.
                prop_assert!(
                    report.stuck_core_mask() != 0
                        || report.memory != vortex::mem::hierarchy::HierarchyOccupancy::default()
                );
            }
            Err(other) => {
                prop_assert!(false, "unexpected trap from fault injection: {other}");
            }
        }
    }

    /// Fault injection is deterministic: the same plan (same seed) gives
    /// the same cycle count on success and the identical structured
    /// report on failure.
    #[test]
    fn identical_seeds_are_identical_runs(plan in plan_strategy()) {
        let first = run_under(&plan);
        let second = run_under(&plan);
        prop_assert_eq!(first, second);
    }
}
