//! The simulator must be fully deterministic: identical configuration and
//! inputs give identical cycle counts, counters, and outputs — the
//! property that makes experiments reproducible and traces comparable.

use vortex::gpu::GpuConfig;
use vortex::kernels::{Benchmark, Bfs, Sgemm, TexBench, FilterKind};

#[test]
fn sgemm_is_cycle_deterministic() {
    let run = || Sgemm::new(8).run_on(&GpuConfig::with_cores(2));
    let a = run();
    let b = run();
    assert_eq!(a.stats.cycles, b.stats.cycles);
    assert_eq!(a.stats.total_instrs(), b.stats.total_instrs());
    assert_eq!(a.stats.dram_reads, b.stats.dram_reads);
    assert_eq!(a.stats.dram_writes, b.stats.dram_writes);
}

#[test]
fn divergent_bfs_is_cycle_deterministic() {
    let run = || Bfs::new(48, 2).run_on(&GpuConfig::with_cores(2));
    let a = run();
    let b = run();
    assert_eq!(a.stats.cycles, b.stats.cycles);
    assert_eq!(
        a.stats.cores[0].divergences,
        b.stats.cores[0].divergences
    );
}

#[test]
fn texture_unit_is_cycle_deterministic() {
    let run = || TexBench::new(FilterKind::Bilinear, true, 4).run_on(&GpuConfig::with_cores(1));
    let a = run();
    let b = run();
    assert_eq!(a.stats.cycles, b.stats.cycles);
    assert_eq!(a.stats.cores[0].tex.texels_fetched, b.stats.cores[0].tex.texels_fetched);
}
