//! # vortex
//!
//! Umbrella crate for the Vortex soft-GPU reproduction. Re-exports every
//! subsystem crate under one roof so examples and downstream users can write
//! `use vortex::...` and hosts the cross-crate integration tests.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-reproduction results.

pub use vortex_asm as asm;
pub use vortex_core as gpu;
pub use vortex_faults as faults;
pub use vortex_gfx as gfx;
pub use vortex_isa as isa;
pub use vortex_kernels as kernels;
pub use vortex_mem as mem;
pub use vortex_model as model;
pub use vortex_obs as obs;
pub use vortex_runtime as runtime;
pub use vortex_tex as tex;
