//! The paper's Figure 13, line for line: a kernel that configures the
//! texture unit through CSR writes (`TEX_ADDR`, `TEX_WIDTH`, ... ) and
//! spawns a shader that samples the source texture into a destination
//! render target with the `tex` instruction.
//!
//! ```sh
//! cargo run --release --example texture_blit
//! ```

use vortex::asm::Assembler;
use vortex::gpu::GpuConfig;
use vortex::isa::{csr, FReg, Reg};
use vortex::kernels::texture::build_texture_with_mips;
use vortex::runtime::{abi, emit_spawn_tasks, ArgWriter, Device};
use vortex::tex::Rgba8;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const LOG_SIZE: u32 = 6; // 64×64 texture and render target
    let size = 1usize << LOG_SIZE;

    let mut dev = Device::new(GpuConfig::with_cores(2));
    let tex_bytes = build_texture_with_mips(LOG_SIZE);
    let src = dev.alloc(tex_bytes.len() as u32)?;
    dev.upload(src, &tex_bytes)?;
    let dst = dev.alloc((size * size * 4) as u32)?;

    // kernel_arg_t { src_ptr, dstW(log), dst_ptr, filter } — Figure 13's
    // argument block, reduced to what the blit needs.
    let mut args = ArgWriter::new();
    args.word(src.addr).word(LOG_SIZE).word(dst.addr).word(1); // bilinear
    dev.write_args(&args);

    // int main(kernel_arg_t* arg) { csr_write(TEX_ADDR(0), arg->src_ptr); … }
    let mut a = Assembler::new();
    emit_spawn_tasks(&mut a, "shader")?; // spawn_tasks(shader, state) — line 19
    a.label("shader")?;
    // Lines 3-9: configure texture unit 0 via CSRs.
    a.lw(Reg::X11, Reg::X10, 0); // arg->src_ptr
    a.csrw(csr::tex_csr(0, csr::TexReg::Addr), Reg::X11);
    a.csrw(csr::tex_csr(0, csr::TexReg::MipOff), Reg::X0); //   = 0
    a.lw(Reg::X12, Reg::X10, 4); // arg->srcW (log2)
    a.csrw(csr::tex_csr(0, csr::TexReg::LogWidth), Reg::X12);
    a.csrw(csr::tex_csr(0, csr::TexReg::LogHeight), Reg::X12);
    a.csrw(csr::tex_csr(0, csr::TexReg::Format), Reg::X0); // RGBA8
    a.csrw(csr::tex_csr(0, csr::TexReg::Wrap), Reg::X0); // clamp
    a.lw(Reg::X5, Reg::X10, 12); // arg->filter
    a.csrw(csr::tex_csr(0, csr::TexReg::Filter), Reg::X5);
    a.lw(Reg::X13, Reg::X10, 8); // arg->dst_ptr
    // deltaX = deltaY = 1 / dstW (lines 15-16).
    a.li(Reg::X5, 1);
    a.sll(Reg::X5, Reg::X5, Reg::X12);
    a.fcvt_s_wu(FReg::X8, Reg::X5);
    a.li(Reg::X6, 1.0f32.to_bits() as i32);
    a.fmv_w_x(FReg::X7, Reg::X6);
    a.fdiv(FReg::X8, FReg::X7, FReg::X8);
    a.li(Reg::X6, 0.5f32.to_bits() as i32);
    a.fmv_w_x(FReg::X7, Reg::X6);
    // Rendering tasks: one pixel per work-item, strided.
    a.slli(Reg::X19, Reg::X12, 1);
    a.li(Reg::X5, 1);
    a.sll(Reg::X19, Reg::X5, Reg::X19); // total pixels
    a.csrr(Reg::X8, csr::VX_GTID);
    a.csrr(Reg::X9, csr::VX_NC);
    a.csrr(Reg::X28, csr::VX_NW);
    a.mul(Reg::X9, Reg::X9, Reg::X28);
    a.csrr(Reg::X28, csr::VX_NT);
    a.mul(Reg::X9, Reg::X9, Reg::X28);
    a.label("px")?;
    a.slt(Reg::X28, Reg::X8, Reg::X19);
    a.split(Reg::X28);
    a.beqz(Reg::X28, "skip");
    // u = (x + 0.5) * deltaX, v = (y + 0.5) * deltaY.
    a.li(Reg::X5, 1);
    a.sll(Reg::X5, Reg::X5, Reg::X12);
    a.addi(Reg::X5, Reg::X5, -1);
    a.and(Reg::X20, Reg::X8, Reg::X5);
    a.srl(Reg::X21, Reg::X8, Reg::X12);
    a.fcvt_s_wu(FReg::X0, Reg::X20);
    a.fadd(FReg::X0, FReg::X0, FReg::X7);
    a.fmul(FReg::X0, FReg::X0, FReg::X8);
    a.fmv_x_w(Reg::X22, FReg::X0);
    a.fcvt_s_wu(FReg::X1, Reg::X21);
    a.fadd(FReg::X1, FReg::X1, FReg::X7);
    a.fmul(FReg::X1, FReg::X1, FReg::X8);
    a.fmv_x_w(Reg::X23, FReg::X1);
    // dst[i] = tex(u, v, 0).
    a.tex(0, Reg::X24, Reg::X22, Reg::X23, Reg::X0);
    a.slli(Reg::X25, Reg::X8, 2);
    a.add(Reg::X25, Reg::X25, Reg::X13);
    a.sw(Reg::X24, Reg::X25, 0);
    a.label("skip")?;
    a.join();
    a.add(Reg::X8, Reg::X8, Reg::X9);
    a.csrr(Reg::X28, csr::VX_TID);
    a.sub(Reg::X28, Reg::X8, Reg::X28);
    a.blt(Reg::X28, Reg::X19, "px");
    a.ret();
    let prog = a.assemble(abi::CODE_BASE)?;

    dev.load_program(&prog);
    let report = dev.run_kernel(prog.entry)?;

    // With a same-size blit at pixel centers, bilinear degenerates to a
    // copy of mip level 0 — verify and report.
    let out = dev.download(dst)?;
    assert_eq!(&out[..], &tex_bytes[..size * size * 4], "blit must copy level 0");
    let tex_stats: u64 = report.stats.cores.iter().map(|c| c.tex_ops).sum();
    println!(
        "blitted {size}x{size} texture: {} tex instructions, {} texel fetches, {} cycles",
        tex_stats,
        report
            .stats
            .cores
            .iter()
            .map(|c| c.tex.texels_fetched)
            .sum::<u64>(),
        report.stats.cycles
    );
    // Show a few pixels.
    for (i, px) in out.chunks_exact(4).take(4).enumerate() {
        let c = Rgba8::new(px[0], px[1], px[2], px[3]);
        println!("  pixel {i}: {c:?}");
    }
    Ok(())
}
