//! Text assembly: write a Vortex kernel in GNU-as-like syntax, assemble it
//! with the text assembler, inspect the disassembly, and run it.
//!
//! ```sh
//! cargo run --release --example custom_kernel
//! ```

use vortex::asm::parse_asm;
use vortex::gpu::GpuConfig;
use vortex::runtime::{abi, ArgWriter, Device};

/// Per-wavefront parallel reduction: every wavefront sums a slice of the
/// input in shared memory... kept simple here: each *thread* sums its
/// strided elements and atomically-ish accumulates per-thread partials.
const KERNEL: &str = r#"
    # bootstrap: wavefront 0 spawns the rest, all threads on
    csrr  t0, 0xCC5          # NW
    la    t1, worker
    wspawn t0, t1
    j     worker
worker:
    csrr  t0, 0xCC4          # NT
    tmc   t0
    li    a0, 0x7F000000     # ARG_BASE
    lw    a1, 0(a0)          # input
    lw    a2, 4(a0)          # partials
    lw    a3, 8(a0)          # n
    csrr  t0, 0xCC7          # gtid
    # stride = NC*NW*NT
    csrr  t1, 0xCC6
    csrr  t2, 0xCC5
    mul   t1, t1, t2
    csrr  t2, 0xCC4
    mul   t1, t1, t2
    li    t3, 0              # sum
loop:
    bge   t0, a3, done
    slli  t4, t0, 2
    add   t4, t4, a1
    lw    t5, 0(t4)
    add   t3, t3, t5
    add   t0, t0, t1
    j     loop
done:
    # partials[gtid] = sum
    csrr  t0, 0xCC7
    slli  t0, t0, 2
    add   t0, t0, a2
    sw    t3, 0(t0)
    ecall
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse_asm(KERNEL, abi::CODE_BASE)?;
    println!("--- disassembly (first 12 instructions) ---");
    for line in program.disassemble().lines().take(12) {
        println!("{line}");
    }

    let mut device = Device::new(GpuConfig::with_cores(1));
    let n: u32 = 1024;
    let input: Vec<u32> = (1..=n).collect();
    let in_buf = device.alloc(n * 4)?;
    device.upload(
        in_buf,
        &input.iter().flat_map(|w| w.to_le_bytes()).collect::<Vec<_>>(),
    )?;
    let total_threads = device.dims().total_threads() as u32;
    let partials = device.alloc(total_threads * 4)?;

    let mut args = ArgWriter::new();
    args.word(in_buf.addr).word(partials.addr).word(n);
    device.write_args(&args);
    device.load_program(&program);

    // This kernel uses a bare `bge` work loop, which is only legal when n
    // is a multiple of the machine width (uniform exit) — it is: 1024
    // items over 16 threads. The library kernels use split/join guards.
    let report = device.run_kernel(program.entry)?;
    let sum: u32 = device.download_words(partials)?.iter().sum();
    assert_eq!(sum, n * (n + 1) / 2);
    println!(
        "sum(1..={n}) = {sum} in {} cycles across {} threads",
        report.stats.cycles, total_threads
    );
    Ok(())
}
