//! Graphics: render two textured, depth-tested triangles through the full
//! pipeline — host geometry + binning, device rasterization with the
//! hardware `tex` instruction — and write the frame to `target/frame.ppm`
//! plus a per-tile Perfetto timeline to `target/frame_trace.json`.
//!
//! ```sh
//! cargo run --release --example graphics
//! ```

use vortex::gfx::pipeline::Texture;
use vortex::gfx::{Mat4, RenderState, Renderer, Vertex};
use vortex::gpu::GpuConfig;
use vortex::obs::perfetto::Timeline;
use vortex::tex::Rgba8;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut renderer = Renderer::new(GpuConfig::with_cores(2), 128, 128);
    renderer.set_clear_color(Rgba8::new(16, 16, 32, 255));

    // A textured quad behind a smaller flat-colored triangle.
    let vertices = vec![
        // quad (z = 0.4, textured)
        Vertex::new(-0.9, -0.9, 0.4, 0.0, 0.0),
        Vertex::new(0.9, -0.9, 0.4, 1.0, 0.0),
        Vertex::new(0.9, 0.9, 0.4, 1.0, 1.0),
        Vertex::new(-0.9, 0.9, 0.4, 0.0, 1.0),
        // triangle (z = -0.2, nearer, flat orange)
        Vertex::new(-0.5, -0.5, -0.2, 0.0, 0.0).with_color(Rgba8::new(255, 140, 0, 255)),
        Vertex::new(0.5, -0.5, -0.2, 0.0, 0.0).with_color(Rgba8::new(255, 140, 0, 255)),
        Vertex::new(0.0, 0.6, -0.2, 0.0, 0.0).with_color(Rgba8::new(255, 140, 0, 255)),
    ];
    let indices = vec![0, 1, 2, 0, 2, 3, 4, 5, 6];
    let texture = Texture::checkerboard(6, Rgba8::WHITE, Rgba8::new(60, 60, 180, 255), 8);
    let mvp = Mat4::rotate_z(0.15);

    // Pass 1: textured quad with the hardware texture unit.
    let state = RenderState {
        texturing: true,
        hw_texture: true,
        ..RenderState::default()
    };
    let report = renderer.draw(&vertices, &[0, 1, 2, 0, 2, 3], &mvp, &state, Some(&texture));
    println!(
        "pass 1 (textured quad): {} triangles, {} cycles, {} tex ops",
        report.triangles,
        report.stats.cycles,
        report.stats.cores.iter().map(|c| c.tex_ops).sum::<u64>()
    );

    // Host-side render of the full scene (both passes) for the image file;
    // the flat state for the triangle pass. The profiled variant also
    // yields per-tile raster counters for the timeline.
    let flat = RenderState::default();
    let (fb_quad, mut profile) =
        renderer.draw_host_profiled(&vertices, &indices[..6], &mvp, &state, Some(&texture));
    let mut fb = fb_quad;
    // Overlay the near triangle respecting depth (host path reuses the
    // same raster arithmetic).
    let (fb_tri, tri_profile) =
        renderer.draw_host_profiled(&vertices, &indices[6..], &mvp, &flat, None);
    for (t, o) in profile.tiles.iter_mut().zip(&tri_profile.tiles) {
        t.tris += o.tris;
        t.covered += o.covered;
        t.shaded += o.shaded;
        t.tex_samples += o.tex_samples;
    }
    for i in 0..fb.color.len() {
        if fb_tri.depth[i] < fb.depth[i] {
            fb.color[i] = fb_tri.color[i];
            fb.depth[i] = fb_tri.depth[i];
        }
    }
    // Keep run artifacts out of the repo root: target/ is already
    // build-output territory (and gitignored).
    std::fs::create_dir_all("target")?;
    std::fs::write("target/frame.ppm", fb.to_ppm())?;
    println!(
        "wrote target/frame.ppm ({}x{}, {:.0}% covered, checksum {:#018x})",
        fb.width,
        fb.height,
        fb.coverage(Rgba8::new(16, 16, 32, 255)) * 100.0,
        fb.color_checksum()
    );
    // Per-tile raster counters (both passes merged) plus the device
    // texture-unit totals from pass 1, on a Perfetto "raster" track.
    let mut timeline = Timeline::new();
    timeline.add_raster_profile(&profile, Some(&report.stats.merged_tex()));
    std::fs::write("target/frame_trace.json", timeline.render())?;
    println!(
        "wrote target/frame_trace.json ({} tile samples on a {}x{} grid)",
        profile.tiles.len(),
        profile.tiles_x,
        profile.tiles_y
    );
    Ok(())
}
