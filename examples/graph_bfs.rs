//! Graph analytics on the soft GPU: level-synchronous BFS over a random
//! graph, with the per-edge frontier check running under `split`/`join`
//! divergence control — the "graph analytics" application class from the
//! paper's introduction.
//!
//! ```sh
//! cargo run --release --example graph_bfs
//! ```

use vortex::gpu::GpuConfig;
use vortex::kernels::rodinia::bfs::{generate_graph, reference_bfs};
use vortex::kernels::{Benchmark, Bfs};

fn main() {
    let nodes = 2048;
    let bench = Bfs::new(nodes, 3);
    let config = GpuConfig::with_cores(4);

    println!("running BFS over {nodes} nodes on a 4-core GPU ...");
    let result = bench.run_on(&config);
    assert!(result.validated, "device BFS disagreed with host reference");

    // Recompute the reference for reporting (the benchmark validated the
    // device output against it already).
    let (srcs, dsts) = generate_graph(nodes, 3);
    let levels = reference_bfs(&srcs, &dsts, nodes);
    let max_level = *levels.iter().max().expect("non-empty");
    let mut histogram = vec![0usize; (max_level + 1) as usize];
    for &l in &levels {
        histogram[l as usize] += 1;
    }

    println!("edges: {} (directed)", srcs.len());
    println!("BFS depth: {max_level}");
    for (level, count) in histogram.iter().enumerate() {
        println!("  level {level}: {count} nodes {}", "#".repeat(count / 16));
    }
    let core0 = &result.stats.cores[0];
    println!(
        "device: {} cycles, thread IPC {:.2}, {} divergent splits on core 0",
        result.stats.cycles,
        result.thread_ipc(),
        core0.divergences
    );
    println!(
        "D$ hit rate {:.1}%, DRAM {} reads / {} writes",
        core0.dcache.hit_rate() * 100.0,
        result.stats.dram_reads,
        result.stats.dram_writes
    );
}
