//! Design-space exploration: sweep wavefront/thread configurations,
//! measuring both performance (cycle-level simulation) and cost (the
//! calibrated FPGA synthesis model) — the §6.2.1 trade-off study as a
//! 30-line user program.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use vortex::gpu::{CoreConfig, GpuConfig};
use vortex::kernels::{Benchmark, Sgemm};
use vortex::model::core_resources;

fn main() {
    println!(
        "{:<8} {:>8} {:>8} {:>6} {:>10} {:>12} {:>14}",
        "config", "LUTs", "regs", "fmax", "IPC", "thread-IPC", "IPC/kLUT"
    );
    let bench = Sgemm::new(24);
    for (w, t) in [(2, 2), (4, 2), (2, 8), (4, 4), (8, 2), (4, 8), (8, 4), (8, 8)] {
        let mut config = GpuConfig::with_cores(1);
        config.core = CoreConfig::with_dims(w, t);
        let result = bench.run_on(&config);
        assert!(result.validated);
        let cost = core_resources(w, t);
        println!(
            "{:<8} {:>8.0} {:>8.0} {:>6.0} {:>10.2} {:>12.2} {:>14.3}",
            config.core.name(),
            cost.luts,
            cost.regs,
            cost.fmax,
            result.ipc(),
            result.thread_ipc(),
            result.thread_ipc() / (cost.luts / 1000.0),
        );
    }
    println!(
        "\nThe paper picks 4W-4T: not the fastest, but the best \
         performance-per-area point that still scales to 16/32 cores."
    );
}
