//! Machine learning on the soft GPU: a two-layer MLP inference
//! (`y = W2 · relu(W1 · x + b1) + b2`) with each layer running as a SIMT
//! kernel — the "machine learning" application class the paper's
//! introduction motivates.
//!
//! ```sh
//! cargo run --release --example nn_inference
//! ```

use vortex::asm::Assembler;
use vortex::gpu::GpuConfig;
use vortex::isa::{csr, FReg, Reg};
use vortex::runtime::{abi, emit_spawn_tasks, ArgWriter, Device};

/// Builds the fused matvec(+bias)(+relu) kernel.
/// Argument block: `w, x, b, y, rows, cols, relu_flag`.
/// Work-item `i` computes `y[i] = act(Σ_j w[i][j]·x[j] + b[i])`.
fn matvec_program() -> vortex::asm::Program {
    let mut a = Assembler::new();
    emit_spawn_tasks(&mut a, "body").expect("stub");
    a.label("body").expect("label");
    for i in 0..7 {
        a.lw(Reg::from_index(11 + i), Reg::X10, (i * 4) as i32);
    }
    // x11=w x12=x x13=b x14=y x15=rows x16=cols x17=relu
    a.csrr(Reg::X8, csr::VX_GTID);
    a.csrr(Reg::X9, csr::VX_NC);
    a.csrr(Reg::X28, csr::VX_NW);
    a.mul(Reg::X9, Reg::X9, Reg::X28);
    a.csrr(Reg::X28, csr::VX_NT);
    a.mul(Reg::X9, Reg::X9, Reg::X28);
    // SIMT-safe work loop (guarded body + uniform back-edge).
    a.label("loop").expect("label");
    a.slt(Reg::X28, Reg::X8, Reg::X15);
    a.split(Reg::X28);
    a.beqz(Reg::X28, "skip");
    // acc = b[i].
    a.slli(Reg::X20, Reg::X8, 2);
    a.add(Reg::X20, Reg::X20, Reg::X13);
    a.flw(FReg::X2, Reg::X20, 0);
    // row pointer = w + i*cols*4.
    a.mul(Reg::X21, Reg::X8, Reg::X16);
    a.slli(Reg::X21, Reg::X21, 2);
    a.add(Reg::X21, Reg::X21, Reg::X11);
    a.mv(Reg::X22, Reg::X12); // x pointer
    a.mv(Reg::X23, Reg::X16); // j countdown (uniform)
    a.label("dot").expect("label");
    a.blez(Reg::X23, "dot_done");
    a.flw(FReg::X0, Reg::X21, 0);
    a.flw(FReg::X1, Reg::X22, 0);
    a.fmadd(FReg::X2, FReg::X0, FReg::X1, FReg::X2);
    a.addi(Reg::X21, Reg::X21, 4);
    a.addi(Reg::X22, Reg::X22, 4);
    a.addi(Reg::X23, Reg::X23, -1);
    a.j("dot");
    a.label("dot_done").expect("label");
    // Optional ReLU: acc = max(acc, 0).
    a.bnez(Reg::X17, "apply_relu");
    a.j("store");
    a.label("apply_relu").expect("label");
    a.fmv_w_x(FReg::X3, Reg::X0); // 0.0
    a.fmax(FReg::X2, FReg::X2, FReg::X3);
    a.label("store").expect("label");
    a.slli(Reg::X24, Reg::X8, 2);
    a.add(Reg::X24, Reg::X24, Reg::X14);
    a.fsw(FReg::X2, Reg::X24, 0);
    a.label("skip").expect("label");
    a.join();
    a.add(Reg::X8, Reg::X8, Reg::X9);
    a.csrr(Reg::X28, csr::VX_TID);
    a.sub(Reg::X28, Reg::X8, Reg::X28);
    a.blt(Reg::X28, Reg::X15, "loop");
    a.ret();
    a.assemble(abi::CODE_BASE).expect("assembles")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const IN: usize = 64;
    const HIDDEN: usize = 32;
    const OUT: usize = 10;

    // Deterministic pseudo-random weights and one input vector.
    let mut seed = 0x1234_5678u32;
    let mut rnd = move || {
        seed ^= seed << 13;
        seed ^= seed >> 17;
        seed ^= seed << 5;
        (seed as f32 / u32::MAX as f32) - 0.5
    };
    let w1: Vec<f32> = (0..HIDDEN * IN).map(|_| rnd() * 0.2).collect();
    let b1: Vec<f32> = (0..HIDDEN).map(|_| rnd() * 0.1).collect();
    let w2: Vec<f32> = (0..OUT * HIDDEN).map(|_| rnd() * 0.2).collect();
    let b2: Vec<f32> = (0..OUT).map(|_| rnd() * 0.1).collect();
    let x: Vec<f32> = (0..IN).map(|_| rnd()).collect();

    let mut dev = Device::new(GpuConfig::with_cores(2));
    let to_bytes = |v: &[f32]| -> Vec<u8> { v.iter().flat_map(|f| f.to_bits().to_le_bytes()).collect() };
    let alloc_up = |dev: &mut Device, v: &[f32]| -> Result<_, Box<dyn std::error::Error>> {
        let buf = dev.alloc((v.len() * 4) as u32)?;
        dev.upload(buf, &to_bytes(v))?;
        Ok(buf)
    };
    let bw1 = alloc_up(&mut dev, &w1)?;
    let bb1 = alloc_up(&mut dev, &b1)?;
    let bw2 = alloc_up(&mut dev, &w2)?;
    let bb2 = alloc_up(&mut dev, &b2)?;
    let bx = alloc_up(&mut dev, &x)?;
    let bh = dev.alloc((HIDDEN * 4) as u32)?;
    let by = dev.alloc((OUT * 4) as u32)?;

    let prog = matvec_program();
    dev.load_program(&prog);

    // Layer 1: hidden = relu(W1·x + b1).
    let mut args = ArgWriter::new();
    args.word(bw1.addr).word(bx.addr).word(bb1.addr).word(bh.addr)
        .word(HIDDEN as u32).word(IN as u32).word(1);
    dev.write_args(&args);
    dev.run_kernel(prog.entry)?;

    // Layer 2: y = W2·hidden + b2.
    let mut args = ArgWriter::new();
    args.word(bw2.addr).word(bh.addr).word(bb2.addr).word(by.addr)
        .word(OUT as u32).word(HIDDEN as u32).word(0);
    dev.write_args(&args);
    let report = dev.run_kernel(prog.entry)?;

    let y = dev.download_floats(by)?;

    // Host reference.
    let matvec = |w: &[f32], x: &[f32], b: &[f32], rows: usize, cols: usize, relu: bool| {
        (0..rows)
            .map(|i| {
                let mut acc = b[i];
                for j in 0..cols {
                    acc = w[i * cols + j].mul_add(x[j], acc);
                }
                if relu {
                    acc.max(0.0)
                } else {
                    acc
                }
            })
            .collect::<Vec<f32>>()
    };
    let h_ref = matvec(&w1, &x, &b1, HIDDEN, IN, true);
    let y_ref = matvec(&w2, &h_ref, &b2, OUT, HIDDEN, false);
    let max_err = y
        .iter()
        .zip(&y_ref)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    assert!(max_err < 1e-5, "device inference diverged: {max_err}");

    let argmax = y
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .expect("non-empty");
    println!("logits: {y:?}");
    println!("predicted class: {argmax} (max |err| vs host: {max_err:.2e})");
    println!(
        "device: {} cycles total across both layers, thread IPC {:.2}",
        report.stats.cycles,
        report.stats.thread_ipc()
    );
    Ok(())
}
