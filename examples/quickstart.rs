//! Quickstart: open a Vortex device, write a tiny SIMT kernel with the
//! assembler, launch it through the driver stack, and read the results.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use vortex::asm::Assembler;
use vortex::gpu::GpuConfig;
use vortex::isa::{csr, Reg};
use vortex::runtime::{abi, emit_spawn_tasks, ArgWriter, Device};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 2-core processor with the paper's baseline 4W-4T cores.
    let mut device = Device::new(GpuConfig::with_cores(2));
    let dims = device.dims();
    println!(
        "device: {} cores x {} wavefronts x {} threads = {} hardware threads",
        dims.cores,
        dims.wavefronts,
        dims.threads,
        dims.total_threads()
    );

    // The kernel computes out[i] = i * i for n work-items, spread over all
    // hardware threads in the standard strided pattern.
    let n: u32 = 100;
    let out = device.alloc(n * 4)?;
    let mut args = ArgWriter::new();
    args.word(out.addr).word(n);
    device.write_args(&args);

    let mut a = Assembler::new();
    emit_spawn_tasks(&mut a, "body")?; // wspawn/tmc bootstrap (Figure 13)
    a.label("body")?;
    a.lw(Reg::X11, Reg::X10, 0); // out
    a.lw(Reg::X12, Reg::X10, 4); // n
    a.csrr(Reg::X8, csr::VX_GTID); // i = global thread id
    a.csrr(Reg::X9, csr::VX_NC); // stride = NC * NW * NT
    a.csrr(Reg::X5, csr::VX_NW);
    a.mul(Reg::X9, Reg::X9, Reg::X5);
    a.csrr(Reg::X5, csr::VX_NT);
    a.mul(Reg::X9, Reg::X9, Reg::X5);
    a.label("loop")?;
    a.bge(Reg::X8, Reg::X12, "done");
    a.mul(Reg::X6, Reg::X8, Reg::X8); // i * i
    a.slli(Reg::X7, Reg::X8, 2);
    a.add(Reg::X7, Reg::X7, Reg::X11);
    a.sw(Reg::X6, Reg::X7, 0);
    a.add(Reg::X8, Reg::X8, Reg::X9);
    a.j("loop");
    a.label("done")?;
    a.ret();
    let program = a.assemble(abi::CODE_BASE)?;

    device.load_program(&program);
    let report = device.run_kernel(program.entry)?;

    let results = device.download_words(out)?;
    assert!(results.iter().enumerate().all(|(i, &v)| v == (i * i) as u32));
    println!("first squares: {:?}", &results[..8]);
    println!(
        "kernel: {} cycles, {} instructions, IPC {:.2} (thread IPC {:.2})",
        report.stats.cycles,
        report.stats.total_instrs(),
        report.stats.ipc(),
        report.stats.thread_ipc()
    );
    Ok(())
}
